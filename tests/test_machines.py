"""Machine specs and the GPU kernel timing model."""

import pytest

from repro.dsl.library import VCYCLE_OPERATIONS
from repro.machines import (
    FRONTIER,
    MACHINES,
    PERLMUTTER,
    SUNSPOT,
    Roofline,
    attainable_gstencil_rate,
    kernel_time,
    pack_time,
    theoretical_gstencil_ceiling,
)
from repro.machines.gpu_model import bytes_per_point, gstencil_per_invocation
from repro.machines.roofline import (
    all_ops_memory_bound,
    machine_roofline,
    roofline_fraction,
)


class TestSpecs:
    def test_three_machines(self):
        assert set(MACHINES) == {"Perlmutter", "Frontier", "Sunspot"}

    def test_paper_brick_dims(self):
        assert PERLMUTTER.brick_dim == 8
        assert FRONTIER.brick_dim == 8
        assert SUNSPOT.brick_dim == 4

    def test_gpu_aware_settings(self):
        assert PERLMUTTER.gpu_aware_mpi
        assert FRONTIER.gpu_aware_mpi
        assert not SUNSPOT.gpu_aware_mpi  # host pointers on Sunspot

    def test_nic_attachment(self):
        assert FRONTIER.node.nic_attached_to_gpu
        assert not PERLMUTTER.node.nic_attached_to_gpu

    def test_ranks_per_node(self):
        assert PERLMUTTER.node.ranks_per_node == 4
        assert FRONTIER.node.ranks_per_node == 8
        assert SUNSPOT.node.ranks_per_node == 12

    def test_slingshot_line_rate_shared(self):
        for m in MACHINES.values():
            assert m.network.nic_peak_gbs == 25.0

    def test_all_efficiencies_cover_the_five_ops(self):
        for m in MACHINES.values():
            assert set(m.gpu.op_roofline_fraction) == set(VCYCLE_OPERATIONS)
            assert set(m.gpu.op_ai_fraction) == set(VCYCLE_OPERATIONS)

    def test_efficiency_validation(self):
        from repro.machines.specs import GPUSpec

        with pytest.raises(ValueError, match="bad efficiency"):
            GPUSpec(
                name="bad",
                programming_model="x",
                peak_fp64_gflops=1.0,
                hbm_peak_gbs=1.0,
                hbm_measured_gbs=1.0,
                kernel_launch_latency_s=1e-6,
                simd_width=32,
                op_roofline_fraction={"applyOp": 1.5},
                op_ai_fraction={},
            )

    def test_launch_latencies_span_paper_range(self):
        """Section VI-A: empirical latencies between 5 and 20 us."""
        lats = sorted(
            m.gpu.kernel_launch_latency_s for m in MACHINES.values()
        )
        assert lats[0] == pytest.approx(5e-6)
        assert lats[-1] == pytest.approx(20e-6)
        assert PERLMUTTER.gpu.kernel_launch_latency_s == lats[0]  # lowest: NVIDIA

    def test_rank_labels(self):
        assert PERLMUTTER.rank_label == "A100 GPU"
        assert FRONTIER.rank_label == "MI250X GCD"
        assert SUNSPOT.rank_label == "PVC tile"


class TestGpuModel:
    def test_perlmutter_apply_op_ceiling_matches_paper(self):
        """Section VI-A quotes 88.75 GStencil/s for the A100."""
        assert theoretical_gstencil_ceiling(PERLMUTTER, "applyOp") == pytest.approx(
            88.75
        )

    def test_attained_below_ceiling(self):
        for m in MACHINES.values():
            for op in VCYCLE_OPERATIONS:
                assert attainable_gstencil_rate(m, op) < theoretical_gstencil_ceiling(
                    m, op
                )

    def test_nvidia_highest_throughput(self):
        """Paper: NVIDIA GPUs provide the highest throughput per process."""
        for op in ("applyOp", "smooth+residual"):
            rate_p = attainable_gstencil_rate(PERLMUTTER, op)
            assert rate_p > attainable_gstencil_rate(FRONTIER, op)
            assert rate_p > attainable_gstencil_rate(SUNSPOT, op)

    def test_kernel_time_affine_in_points(self):
        t1 = kernel_time(PERLMUTTER, "applyOp", 10**6)
        t2 = kernel_time(PERLMUTTER, "applyOp", 2 * 10**6)
        launch = PERLMUTTER.gpu.kernel_launch_latency_s
        assert t2 - t1 == pytest.approx(t1 - launch, rel=1e-9)

    def test_zero_points_is_pure_launch(self):
        assert kernel_time(SUNSPOT, "smooth", 0) == pytest.approx(20e-6)

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            kernel_time(PERLMUTTER, "applyOp", -1)

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            bytes_per_point("fft")

    def test_extra_ops_have_traffic(self):
        assert bytes_per_point("initZero") == 8
        assert bytes_per_point("residual") == 24

    def test_gstencil_per_invocation_saturates(self):
        small = gstencil_per_invocation(PERLMUTTER, "applyOp", 16**3)
        large = gstencil_per_invocation(PERLMUTTER, "applyOp", 512**3)
        assert small < large
        assert large == pytest.approx(
            attainable_gstencil_rate(PERLMUTTER, "applyOp"), rel=1e-2
        )

    def test_pack_time(self):
        assert pack_time(PERLMUTTER, 0) == 0.0
        t = pack_time(PERLMUTTER, 10**6)
        assert t > PERLMUTTER.gpu.kernel_launch_latency_s
        with pytest.raises(ValueError):
            pack_time(PERLMUTTER, -1)


class TestRoofline:
    def test_attainable(self):
        roof = Roofline(peak_gflops=100.0, bandwidth_gbs=10.0)
        assert roof.attainable_gflops(1.0) == 10.0
        assert roof.attainable_gflops(100.0) == 100.0

    def test_ridge_point(self):
        roof = Roofline(100.0, 10.0)
        assert roof.ridge_point() == 10.0
        assert roof.is_memory_bound(0.5)
        assert not roof.is_memory_bound(20.0)

    def test_invalid_ai(self):
        with pytest.raises(ValueError):
            Roofline(100.0, 10.0).attainable_gflops(0.0)

    def test_fraction(self):
        roof = Roofline(100.0, 10.0)
        assert roofline_fraction(5.0, 1.0, roof) == pytest.approx(0.5)

    def test_machine_roofline_uses_measured_bw(self):
        roof = machine_roofline(PERLMUTTER.gpu)
        assert roof.bandwidth_gbs == 1420.0
        peak = machine_roofline(PERLMUTTER.gpu, empirical=False)
        assert peak.bandwidth_gbs == 1555.0

    def test_every_vcycle_op_is_memory_bound_everywhere(self):
        """The paper's premise for using bandwidth ceilings."""
        for m in MACHINES.values():
            assert all_ops_memory_bound(m)
