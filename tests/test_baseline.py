"""HPGMG-style baseline: numerically identical, different schedule."""

import numpy as np
import pytest

from repro.gmg import ArrayGMG, GMGSolver, SolverConfig


class TestBaselineNumerics:
    @pytest.fixture(scope="class")
    def pair(self):
        brick = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20)
        )
        brick_res = brick.solve()
        base = ArrayGMG(global_cells=16, num_levels=2, max_smooths=6,
                        bottom_smooths=20)
        base_hist = base.solve()
        return brick, brick_res, base, base_hist

    def test_residual_histories_identical(self, pair):
        _, brick_res, _, base_hist = pair
        assert brick_res.residual_history == base_hist

    def test_solutions_identical(self, pair):
        brick, _, base, _ = pair
        np.testing.assert_array_equal(brick.solution(), base.levels[0].x)

    def test_baseline_converges(self, pair):
        _, _, _, base_hist = pair
        assert base_hist[-1] <= 1e-10


class TestBaselineSchedule:
    def test_exchanges_every_smooth(self):
        base = ArrayGMG(global_cells=16, num_levels=2, max_smooths=6,
                        bottom_smooths=10, max_vcycles=1, tol=0.0)
        base.solve()
        # per cycle: level 0 has 2 visits x 6 smooths = 12 exchanges;
        # plus 2 convergence checks (initial + after the cycle)
        assert base.recorder.exchange_counts()[0] == 12 + 2
        assert base.recorder.exchange_counts()[1] == 10

    def test_messages_are_ghost_width_one(self):
        base = ArrayGMG(global_cells=16, num_levels=2)
        base._record_exchange(0)
        face = [m for m in base.recorder.messages if m.direction_kind == "face"]
        assert face[0].nbytes == 16 * 16 * 8

    def test_packing_segments_recorded(self):
        """Conventional layout sends strided regions: many segments."""
        base = ArrayGMG(global_cells=16, num_levels=2)
        base._record_exchange(0)
        x_face = base.recorder.messages[
            [m.direction_kind for m in base.recorder.messages].index("face")
        ]
        assert x_face.segments > 1

    def test_levels_must_divide(self):
        with pytest.raises(ValueError):
            ArrayGMG(global_cells=12, num_levels=4)

    def test_more_exchanges_than_brick_solver(self):
        brick = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20)
        )
        brick.solve()
        base = ArrayGMG(global_cells=16, num_levels=2, max_smooths=6,
                        bottom_smooths=20)
        base.solve()
        assert sum(base.recorder.exchange_counts().values()) > sum(
            brick.recorder.exchange_counts().values()
        )
