"""Simulated MPI semantics: matching, ordering, collectives."""

import numpy as np
import pytest

from repro.comm import SimComm


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(10.0)
        comm.isend(0, 1, tag=7, payload=payload)
        out = comm.irecv(1, 0, tag=7).wait()
        assert np.array_equal(out, payload)

    def test_payload_snapshotted_at_post(self):
        """MPI buffered-send semantics: mutating after isend is safe."""
        comm = SimComm(2)
        payload = np.arange(4.0)
        comm.isend(0, 1, tag=0, payload=payload)
        payload[:] = -1.0
        out = comm.irecv(1, 0, tag=0).wait()
        assert np.array_equal(out, np.arange(4.0))

    def test_tag_matching(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=1, payload=np.array([1.0]))
        comm.isend(0, 1, tag=2, payload=np.array([2.0]))
        assert comm.irecv(1, 0, tag=2).wait()[0] == 2.0
        assert comm.irecv(1, 0, tag=1).wait()[0] == 1.0

    def test_fifo_for_identical_envelopes(self):
        """Non-overtaking: same (src, dst, tag) arrives in post order."""
        comm = SimComm(2)
        for v in (1.0, 2.0, 3.0):
            comm.isend(0, 1, tag=5, payload=np.array([v]))
        got = [comm.irecv(1, 0, tag=5).wait()[0] for _ in range(3)]
        assert got == [1.0, 2.0, 3.0]

    def test_self_send(self):
        comm = SimComm(1)
        comm.isend(0, 0, tag=0, payload=np.array([4.0]))
        assert comm.irecv(0, 0, tag=0).wait()[0] == 4.0

    def test_unmatched_wait_raises(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.irecv(1, 0, tag=9).wait()

    def test_rank_range_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.isend(0, 2, tag=0, payload=np.zeros(1))
        with pytest.raises(ValueError):
            comm.irecv(-1, 0, tag=0)

    def test_wait_is_idempotent(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.array([1.0]))
        req = comm.irecv(1, 0, tag=0)
        a = req.wait()
        b = req.wait()
        assert a is b

    def test_waitall(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.array([1.0]))
        comm.isend(0, 1, tag=1, payload=np.array([2.0]))
        reqs = [comm.irecv(1, 0, tag=t) for t in (0, 1)]
        outs = comm.waitall(reqs)
        assert [o[0] for o in outs] == [1.0, 2.0]

    def test_send_request_wait_is_noop(self):
        comm = SimComm(2)
        req = comm.isend(0, 1, tag=0, payload=np.zeros(3))
        req.wait()
        assert req.nbytes == 24


class TestStats:
    def test_counters(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(10))
        comm.isend(1, 0, tag=0, payload=np.zeros(5))
        assert comm.sent_messages == 2
        assert comm.sent_bytes == 120
        assert comm.bytes_by_pair[(0, 1)] == 80

    def test_assert_drained_clean(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.irecv(1, 0, tag=0).wait()
        comm.assert_drained()

    def test_assert_drained_detects_leftovers(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        with pytest.raises(RuntimeError, match="undelivered"):
            comm.assert_drained()

    def test_assert_drained_names_each_leaking_mailbox(self):
        comm = SimComm(3)
        comm.isend(0, 1, tag=3, payload=np.zeros(1))
        comm.isend(0, 1, tag=3, payload=np.zeros(1))
        comm.isend(2, 0, tag=7, payload=np.zeros(1))
        with pytest.raises(RuntimeError) as exc:
            comm.assert_drained()
        assert "2 mailbox(es)" in str(exc.value)
        assert "dst=1 src=0 tag=3: 2 pending" in str(exc.value)
        assert "dst=0 src=2 tag=7: 1 pending" in str(exc.value)


class TestFaultTransport:
    """Resilience primitives: headers, delay queue, retransmission."""

    def test_try_match_returns_none_instead_of_raising(self):
        comm = SimComm(2)
        assert comm.try_match(1, 0, tag=0) is None
        comm.isend(0, 1, tag=0, payload=np.arange(3.0))
        msg = comm.try_match(1, 0, tag=0)
        assert np.array_equal(msg.payload, np.arange(3.0))
        assert msg.seq == 0

    def test_sequence_numbers_are_per_envelope(self):
        comm = SimComm(2)
        for _ in range(2):
            comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.isend(0, 1, tag=1, payload=np.zeros(1))
        assert comm.try_match(1, 0, tag=0).seq == 0
        assert comm.try_match(1, 0, tag=0).seq == 1
        assert comm.try_match(1, 0, tag=1).seq == 0

    def test_delay_parks_until_released(self):
        from repro.faults.injector import FaultAction

        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.array([9.0]),
                   fault=FaultAction("delay"))
        assert comm.try_match(1, 0, tag=0) is None
        assert comm.release_delayed(1, 0, tag=0) == 1
        assert comm.try_match(1, 0, tag=0).payload[0] == 9.0
        assert comm.release_delayed(1, 0, tag=0) == 0

    def test_retransmit_resends_pristine_payload(self):
        from repro.faults.injector import FaultAction

        comm = SimComm(2)
        payload = np.arange(4.0)
        comm.isend(0, 1, tag=0, payload=payload, checksum=123,
                   fault=FaultAction("corrupt", corrupt_byte=2, corrupt_bit=5))
        corrupted = comm.try_match(1, 0, tag=0)
        assert not np.array_equal(corrupted.payload, payload)
        nbytes = comm.retransmit(1, 0, tag=0)
        assert nbytes == payload.nbytes
        assert comm.retransmissions == 1
        fresh = comm.try_match(1, 0, tag=0)
        # same envelope identity (seq, checksum), uncorrupted data
        assert np.array_equal(fresh.payload, payload)
        assert fresh.seq == corrupted.seq
        assert fresh.checksum == 123

    def test_retransmit_without_prior_send_is_protocol_bug(self):
        from repro.comm import UnmatchedReceiveError

        comm = SimComm(2)
        with pytest.raises(UnmatchedReceiveError, match="nothing was ever sent"):
            comm.retransmit(1, 0, tag=4)

    def test_discard_stale_drops_old_sequence_numbers(self):
        comm = SimComm(2)
        for _ in range(3):
            comm.isend(0, 1, tag=0, payload=np.zeros(1))
        assert comm.discard_stale(1, 0, tag=0, below_seq=2) == 2
        assert comm.try_match(1, 0, tag=0).seq == 2

    def test_reset_in_flight_purges_everything(self):
        from repro.faults.injector import FaultAction

        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.isend(0, 1, tag=1, payload=np.zeros(1),
                   fault=FaultAction("delay"))
        assert comm.in_flight() == {(1, 0, 0): 1, (1, 0, 1): 1}
        assert comm.reset_in_flight() == 2
        comm.assert_drained()


class TestCollectives:
    def test_allreduce_max(self):
        comm = SimComm(3)
        assert comm.allreduce_max([1.0, 5.0, 3.0]) == 5.0

    def test_allreduce_max_propagates_nan(self):
        """A poisoned local residual must surface globally (MPI_MAX)."""
        comm = SimComm(3)
        assert np.isnan(comm.allreduce_max([1.0, float("nan"), 3.0]))

    def test_allreduce_sum(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0

    def test_allreduce_requires_all_ranks(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            comm.allreduce_max([1.0, 2.0])

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SimComm(0)


class TestCommSpans:
    """Per-rank span attribution of sends, receives, retransmissions."""

    def test_isend_lands_on_sender_timeline(self):
        from repro.obs import Tracer

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=7, payload=np.arange(4.0), level=2)
        (span,) = tracer.children[0].spans
        assert span.name == "isend"
        assert span.attrs == {
            "l": 2, "src": 0, "dst": 1, "tag": 7, "bytes": 32, "seq": 0,
        }

    def test_matched_receive_lands_on_receiver_timeline(self):
        from repro.obs import Tracer

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=7, payload=np.arange(4.0), level=1)
        comm.irecv(1, 0, tag=7, level=1).wait()
        (span,) = tracer.children[1].spans
        assert span.name == "irecv"
        assert span.attrs["src"] == 0 and span.attrs["dst"] == 1
        assert span.attrs["l"] == 1 and span.attrs["bytes"] == 32

    def test_send_span_precedes_matching_recv_span(self):
        """Lockstep ordering: the property the critical-path DP's
        sort-by-start topological order rests on."""
        from repro.obs import Tracer

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=0, payload=np.zeros(8))
        comm.irecv(1, 0, tag=0).wait()
        send = tracer.children[0].spans[0]
        recv = tracer.children[1].spans[0]
        assert send.end <= recv.start

    def test_retransmit_traced_with_original_seq(self):
        from repro.faults.injector import FaultAction
        from repro.obs import Tracer

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=3, payload=np.zeros(2), fault=FaultAction("drop"))
        comm.retransmit(1, 0, tag=3, level=0)
        names = [s.name for s in tracer.children[0].spans]
        assert names == ["isend", "retransmit"]
        assert tracer.children[0].spans[1].attrs["seq"] == 0

    def test_waitall_wraps_batch_on_root_timeline(self):
        from repro.obs import Tracer

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.isend(1, 0, tag=0, payload=np.zeros(1))
        reqs = [comm.irecv(1, 0, tag=0), comm.irecv(0, 1, tag=0)]
        comm.waitall(reqs)
        (span,) = tracer.spans
        assert span.name == "waitall" and span.attrs == {"n": 2}
        # the receives completed inside it, on their own timelines
        assert tracer.children[0].spans and tracer.children[1].spans

    def test_untraced_comm_records_nothing(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.irecv(1, 0, tag=0).wait()
        assert not comm.tracer.enabled
