"""Simulated MPI semantics: matching, ordering, collectives."""

import numpy as np
import pytest

from repro.comm import SimComm


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(10.0)
        comm.isend(0, 1, tag=7, payload=payload)
        out = comm.irecv(1, 0, tag=7).wait()
        assert np.array_equal(out, payload)

    def test_payload_snapshotted_at_post(self):
        """MPI buffered-send semantics: mutating after isend is safe."""
        comm = SimComm(2)
        payload = np.arange(4.0)
        comm.isend(0, 1, tag=0, payload=payload)
        payload[:] = -1.0
        out = comm.irecv(1, 0, tag=0).wait()
        assert np.array_equal(out, np.arange(4.0))

    def test_tag_matching(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=1, payload=np.array([1.0]))
        comm.isend(0, 1, tag=2, payload=np.array([2.0]))
        assert comm.irecv(1, 0, tag=2).wait()[0] == 2.0
        assert comm.irecv(1, 0, tag=1).wait()[0] == 1.0

    def test_fifo_for_identical_envelopes(self):
        """Non-overtaking: same (src, dst, tag) arrives in post order."""
        comm = SimComm(2)
        for v in (1.0, 2.0, 3.0):
            comm.isend(0, 1, tag=5, payload=np.array([v]))
        got = [comm.irecv(1, 0, tag=5).wait()[0] for _ in range(3)]
        assert got == [1.0, 2.0, 3.0]

    def test_self_send(self):
        comm = SimComm(1)
        comm.isend(0, 0, tag=0, payload=np.array([4.0]))
        assert comm.irecv(0, 0, tag=0).wait()[0] == 4.0

    def test_unmatched_wait_raises(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.irecv(1, 0, tag=9).wait()

    def test_rank_range_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.isend(0, 2, tag=0, payload=np.zeros(1))
        with pytest.raises(ValueError):
            comm.irecv(-1, 0, tag=0)

    def test_wait_is_idempotent(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.array([1.0]))
        req = comm.irecv(1, 0, tag=0)
        a = req.wait()
        b = req.wait()
        assert a is b

    def test_waitall(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.array([1.0]))
        comm.isend(0, 1, tag=1, payload=np.array([2.0]))
        reqs = [comm.irecv(1, 0, tag=t) for t in (0, 1)]
        outs = comm.waitall(reqs)
        assert [o[0] for o in outs] == [1.0, 2.0]

    def test_send_request_wait_is_noop(self):
        comm = SimComm(2)
        req = comm.isend(0, 1, tag=0, payload=np.zeros(3))
        req.wait()
        assert req.nbytes == 24


class TestStats:
    def test_counters(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(10))
        comm.isend(1, 0, tag=0, payload=np.zeros(5))
        assert comm.sent_messages == 2
        assert comm.sent_bytes == 120
        assert comm.bytes_by_pair[(0, 1)] == 80

    def test_assert_drained_clean(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        comm.irecv(1, 0, tag=0).wait()
        comm.assert_drained()

    def test_assert_drained_detects_leftovers(self):
        comm = SimComm(2)
        comm.isend(0, 1, tag=0, payload=np.zeros(1))
        with pytest.raises(RuntimeError, match="undelivered"):
            comm.assert_drained()


class TestCollectives:
    def test_allreduce_max(self):
        comm = SimComm(3)
        assert comm.allreduce_max([1.0, 5.0, 3.0]) == 5.0

    def test_allreduce_sum(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0

    def test_allreduce_requires_all_ranks(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            comm.allreduce_max([1.0, 2.0])

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SimComm(0)
