"""Non-constant-coefficient stencils through the DSL (Section III:
"this format is fairly flexible, including ... non-constant
coefficients")."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import analyze, compile_stencil
from repro.dsl.library import build_variable_coefficient_apply_op


@pytest.fixture(scope="module")
def stencil():
    return build_variable_coefficient_apply_op()


class TestAnalysis:
    def test_reads_five_grids(self, stencil):
        an = analyze(stencil)
        assert set(an.input_grids) == {"x", "c0", "cx", "cy", "cz"}
        assert an.output_grids == ("Ax",)

    def test_only_x_needs_halo(self, stencil):
        an = analyze(stencil)
        assert an.halo_grids == ("x",)

    def test_traffic_is_six_streams(self, stencil):
        an = analyze(stencil)
        assert an.bytes_per_point == 48  # 5 reads + 1 write

    def test_flops(self, stencil):
        # 4 multiplies + 3 pairwise neighbour adds + 3 axis adds = 10
        assert analyze(stencil).flops_per_point == 10

    def test_lower_ai_than_constant_coefficient(self, stencil):
        from repro.dsl import APPLY_OP, arithmetic_intensity

        assert arithmetic_intensity(stencil) < arithmetic_intensity(APPLY_OP)


class TestExecution:
    def test_matches_dense_oracle(self, stencil, rng):
        grid = BrickGrid((4, 4, 4), 4)
        n = grid.shape_cells
        dense = {g: rng.random(n) for g in ("x", "c0", "cx", "cy", "cz")}
        fields = {}
        for name, arr in dense.items():
            f = BrickedArray.from_ijk(grid, arr)
            f.fill_ghost_periodic()
            fields[name] = f
        fields["Ax"] = BrickedArray.zeros(grid)

        compile_stencil(stencil, 4).apply(fields, {})

        x = dense["x"]
        oracle = (
            dense["c0"] * x
            + dense["cx"] * (np.roll(x, -1, 0) + np.roll(x, 1, 0))
            + dense["cy"] * (np.roll(x, -1, 1) + np.roll(x, 1, 1))
            + dense["cz"] * (np.roll(x, -1, 2) + np.roll(x, 1, 2))
        )
        np.testing.assert_allclose(fields["Ax"].to_ijk(), oracle, rtol=1e-14)

    def test_constant_coefficients_recover_apply_op(self, stencil, rng):
        """With c0 = alpha and cx = cy = cz = beta the variable kernel
        must agree with the constant-coefficient applyOp."""
        from repro.dsl import APPLY_OP

        grid = BrickGrid((4, 4, 4), 4)
        n = grid.shape_cells
        x_dense = rng.random(n)
        alpha, beta = -6.0, 1.0

        fields_var = {
            "x": BrickedArray.from_ijk(grid, x_dense),
            "c0": BrickedArray.from_ijk(grid, np.full(n, alpha)),
            "cx": BrickedArray.from_ijk(grid, np.full(n, beta)),
            "cy": BrickedArray.from_ijk(grid, np.full(n, beta)),
            "cz": BrickedArray.from_ijk(grid, np.full(n, beta)),
            "Ax": BrickedArray.zeros(grid),
        }
        for f in fields_var.values():
            f.fill_ghost_periodic()
        compile_stencil(stencil, 4).apply(fields_var, {})

        fields_const = {
            "x": fields_var["x"],
            "Ax": BrickedArray.zeros(grid),
        }
        compile_stencil(APPLY_OP, 4).apply(
            fields_const, {"alpha": alpha, "beta": beta}
        )
        # association order differs between the two kernels -> rounding
        np.testing.assert_allclose(
            fields_var["Ax"].to_ijk(),
            fields_const["Ax"].to_ijk(),
            rtol=1e-12,
            atol=1e-13,
        )
