"""Halo gather: extended blocks must agree with the dense wrap oracle."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray, gather_extended


def dense_extended(dense: np.ndarray, lo: tuple, b: int, r: int) -> np.ndarray:
    """Oracle: the (b+2r)^3 block around interior brick origin ``lo``
    taken from the periodically extended dense field."""
    n = dense.shape
    idx = [np.mod(np.arange(lo[d] - r, lo[d] + b + r), n[d]) for d in range(3)]
    return dense[np.ix_(*idx)]


class TestGatherExtended:
    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_matches_dense_oracle(self, small_grid, rng, radius):
        dense = rng.random(small_grid.shape_cells)
        f = BrickedArray.from_ijk(small_grid, dense)
        f.fill_ghost_periodic()
        E = gather_extended(f, radius)
        b = small_grid.brick_dim
        for bx, by, bz in [(0, 0, 0), (3, 2, 1), (1, 1, 0)]:
            s = small_grid.slot_of((bx, by, bz))
            oracle = dense_extended(dense, (bx * b, by * b, bz * b), b, radius)
            assert np.array_equal(E[s], oracle), (bx, by, bz)

    def test_radius_zero_is_copy(self, random_field):
        field, _ = random_field
        E = gather_extended(field, 0)
        assert np.array_equal(E, field.data)

    def test_radius_exceeding_brick_rejected(self, random_field):
        field, _ = random_field
        with pytest.raises(ValueError):
            gather_extended(field, 5)

    def test_negative_radius_rejected(self, random_field):
        field, _ = random_field
        with pytest.raises(ValueError):
            gather_extended(field, -1)

    def test_out_buffer_reused(self, random_field):
        field, _ = random_field
        field.fill_ghost_periodic()
        buf = np.empty((field.grid.num_slots, 6, 6, 6))
        E = gather_extended(field, 1, out=buf)
        assert E is buf

    def test_out_buffer_shape_checked(self, random_field):
        field, _ = random_field
        with pytest.raises(ValueError):
            gather_extended(field, 1, out=np.empty((3, 6, 6, 6)))

    def test_corner_halo_comes_through_corner_neighbor(self, rng):
        """Edges and corners of the extended block must be right — the
        7-point stencil never reads them but restriction-adjacent
        kernels could."""
        grid = BrickGrid((2, 2, 2), 4, ghost_bricks=1)
        dense = rng.random((8, 8, 8))
        f = BrickedArray.from_ijk(grid, dense)
        f.fill_ghost_periodic()
        E = gather_extended(f, 1)
        s = grid.slot_of((0, 0, 0))
        # extended corner (0,0,0) = dense at wrapped (-1,-1,-1)
        assert E[s, 0, 0, 0] == dense[-1, -1, -1]

    def test_gather_ordering_independent(self, rng):
        dense = rng.random((8, 8, 8))
        results = []
        for ordering in ("lexicographic", "surface-major"):
            grid = BrickGrid((2, 2, 2), 4, 1, ordering)
            f = BrickedArray.from_ijk(grid, dense)
            f.fill_ghost_periodic()
            E = gather_extended(f, 1)
            s = grid.slot_of((1, 1, 1))
            results.append(E[s].copy())
        assert np.array_equal(results[0], results[1])
