"""Rank-resolved comm analysis: matrices, breakdowns, critical paths."""

import numpy as np
import pytest

from repro.gmg import GMGSolver, SolverConfig
from repro.obs import Tracer, to_chrome_trace
from repro.obs.chrome_trace import rank_pid
from repro.obs.rank import (
    critical_paths,
    fit_message_model,
    message_time_samples,
    rank_time_breakdown,
    traffic_matrix,
)


class ManualClock:
    """Clock that only moves when the test says so."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _emit(clock, tracer, name, t0, t1, **attrs):
    clock.t = t0
    with tracer.span(name, **attrs):
        clock.t = t1


@pytest.fixture(scope="module")
def traced_solve():
    """One traced 2-rank tier-1-shaped solve shared across the module."""
    config = SolverConfig(
        global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
        bottom_smooths=20, max_vcycles=2, rank_dims=(2, 1, 1),
    )
    tracer = Tracer()
    solver = GMGSolver(config, tracer=tracer)
    result = solver.solve()
    return config, solver, tracer, result


class TestTrafficMatrix:
    def test_matches_simulator_ledger(self, traced_solve):
        """The span-derived matrix must agree byte-for-byte with the
        simulator's own ``bytes_by_pair`` accounting."""
        config, solver, tracer, _ = traced_solve
        traffic = traffic_matrix(tracer, size=config.num_ranks)
        for (src, dst), nbytes in solver.comm.bytes_by_pair.items():
            assert traffic.nbytes[src, dst] == nbytes
        assert traffic.total_bytes == solver.comm.sent_bytes
        assert traffic.total_messages == solver.comm.sent_messages

    def test_per_level_split_sums_to_total(self, traced_solve):
        config, _, tracer, _ = traced_solve
        traffic = traffic_matrix(tracer, size=config.num_ranks)
        assert traffic.levels() == [0, 1]
        stacked = sum(traffic.level_nbytes[lev] for lev in traffic.levels())
        np.testing.assert_array_equal(stacked, traffic.nbytes)

    def test_clean_solve_has_no_retransmissions(self, traced_solve):
        config, _, tracer, _ = traced_solve
        traffic = traffic_matrix(tracer, size=config.num_ranks)
        assert traffic.total_retransmissions == 0

    def test_retransmit_spans_counted(self):
        from repro.comm import SimComm
        from repro.faults.injector import FaultAction

        tracer = Tracer()
        comm = SimComm(2, tracer=tracer)
        comm.isend(0, 1, tag=3, payload=np.arange(8.0),
                   fault=FaultAction(kind="drop"))
        comm.retransmit(1, 0, tag=3)
        assert comm.irecv(1, 0, tag=3).wait().size == 8
        traffic = traffic_matrix(tracer)
        assert traffic.messages[0, 1] == 2
        assert traffic.retransmissions[0, 1] == 1
        assert traffic.nbytes[0, 1] == 2 * 8 * 8

    def test_empty_tracer_needs_size(self):
        with pytest.raises(ValueError, match="no per-rank spans"):
            traffic_matrix(Tracer())


class TestRankBreakdown:
    def test_every_rank_accounted(self, traced_solve):
        config, _, tracer, _ = traced_solve
        breakdown = rank_time_breakdown(tracer)
        assert sorted(breakdown) == list(range(config.num_ranks))
        for by_name in breakdown.values():
            assert {"isend", "irecv", "unpack"} <= set(by_name)
            assert all(v >= 0 for v in by_name.values())

    def test_durations_match_child_spans(self, traced_solve):
        _, _, tracer, _ = traced_solve
        breakdown = rank_time_breakdown(tracer)
        for rank, child in tracer.children.items():
            total = sum(breakdown[rank].values())
            assert total == pytest.approx(
                sum(s.duration for s in child.spans)
            )


class TestCriticalPath:
    def test_matched_edge_beats_local_chain(self):
        """A long send on rank 0 must pull the path across the matched
        send -> recv edge onto rank 1's receive."""
        clock = ManualClock()
        root = Tracer(clock=clock)
        r0, r1 = root.child(0), root.child(1)
        clock.t = 0.0
        with root.span("vcycle", v=0):
            _emit(clock, r0, "isend", 1.0, 3.0,
                  l=0, src=0, dst=1, tag=5, bytes=800, seq=0)
            _emit(clock, r1, "isend", 3.0, 3.5,
                  l=0, src=1, dst=0, tag=6, bytes=800, seq=0)
            _emit(clock, r0, "irecv", 4.0, 4.2,
                  l=0, src=1, dst=0, tag=6, bytes=800, seq=0)
            _emit(clock, r1, "irecv", 4.0, 4.5,
                  l=0, src=0, dst=1, tag=5, bytes=800, seq=0)
            _emit(clock, r1, "unpack", 5.0, 6.0,
                  l=0, src=0, dst=1, tag=5, bytes=800)
            clock.t = 10.0
        (path,) = critical_paths(root)
        assert [s.name for s in path.steps] == ["isend", "irecv", "unpack"]
        assert [s.rank for s in path.steps] == [0, 1, 1]
        assert path.duration_s == pytest.approx(2.0 + 0.5 + 1.0)
        assert path.window_s == pytest.approx(10.0)

    def test_paths_bounded_by_vcycle_window(self, traced_solve):
        """The chain is disjoint spans inside the window, so its total
        can never exceed the measured vcycle root span."""
        _, _, tracer, result = traced_solve
        paths = critical_paths(tracer)
        assert len(paths) == result.num_vcycles
        for p in paths:
            assert 0.0 < p.duration_s <= p.window_s
            assert p.comm_bytes > 0

    def test_model_prices_each_message_once(self):
        from repro.machines import MACHINES
        from repro.machines.network import message_time

        machine = MACHINES["Perlmutter"]
        clock = ManualClock()
        root = Tracer(clock=clock)
        r0, r1 = root.child(0), root.child(1)
        clock.t = 0.0
        with root.span("vcycle", v=0):
            _emit(clock, r0, "isend", 1.0, 2.0,
                  l=0, src=0, dst=1, tag=5, bytes=4096, seq=0)
            _emit(clock, r1, "irecv", 3.0, 3.5,
                  l=0, src=0, dst=1, tag=5, bytes=4096, seq=0)
            clock.t = 5.0
        (path,) = critical_paths(root, machine=machine)
        # isend and its matching irecv share one wire message
        assert path.model_s == pytest.approx(message_time(machine, 4096))

    def test_model_column_on_real_solve(self, traced_solve):
        from repro.machines import MACHINES

        _, _, tracer, _ = traced_solve
        paths = critical_paths(tracer, machine=MACHINES["Perlmutter"])
        assert all(p.model_s is not None and p.model_s > 0 for p in paths)


class TestMessageModelFit:
    def test_fit_recovers_planted_alpha_beta(self):
        clock = ManualClock()
        root = Tracer(clock=clock)
        child = root.child(0)
        alpha, beta = 1e-5, 1e9  # 10us + 1 GB/s
        t = 0.0
        for nbytes in (512, 4096, 32768, 262144):
            for _ in range(3):
                _emit(clock, child, "isend", t, t + alpha + nbytes / beta,
                      l=0, src=0, dst=1, tag=0, bytes=nbytes, seq=0)
                t += 1.0
        fit = fit_message_model(root)
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.beta == pytest.approx(beta, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_single_size_returns_none(self):
        clock = ManualClock()
        root = Tracer(clock=clock)
        _emit(clock, root.child(0), "isend", 0.0, 1.0,
              l=0, src=0, dst=1, tag=0, bytes=64, seq=0)
        assert fit_message_model(root) is None

    def test_samples_cover_all_sends(self, traced_solve):
        _, solver, tracer, _ = traced_solve
        xs, ts = message_time_samples(tracer)
        assert len(xs) == solver.comm.sent_messages
        assert np.all(xs > 0) and np.all(ts > 0)


class TestRankChromeExport:
    def test_one_pid_per_rank(self, traced_solve):
        config, _, tracer, _ = traced_solve
        obj = to_chrome_trace(tracer)
        pids = {e["pid"] for e in obj["traceEvents"]}
        assert pids == {1} | {rank_pid(r) for r in range(config.num_ranks)}
        names = {
            e["pid"]: e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M"
        }
        assert names[1] == "solve (global timeline)"
        for r in range(config.num_ranks):
            assert names[rank_pid(r)] == f"rank {r}"

    def test_comm_spans_land_on_owner_pid(self, traced_solve):
        _, _, tracer, _ = traced_solve
        obj = to_chrome_trace(tracer)
        for ev in obj["traceEvents"]:
            if ev["name"] in ("isend", "retransmit"):
                assert ev["pid"] == rank_pid(ev["args"]["src"])
            elif ev["name"] in ("irecv", "unpack"):
                assert ev["pid"] == rank_pid(ev["args"]["dst"])
