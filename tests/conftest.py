"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240513)


@pytest.fixture(params=["lexicographic", "surface-major"])
def ordering(request) -> str:
    return request.param


@pytest.fixture
def small_grid(ordering) -> BrickGrid:
    """A 4x3x2-brick grid of 4^3 bricks with one ghost brick."""
    return BrickGrid((4, 3, 2), 4, ghost_bricks=1, ordering=ordering)


@pytest.fixture
def random_field(small_grid, rng) -> tuple[BrickedArray, np.ndarray]:
    dense = rng.random(small_grid.shape_cells)
    return BrickedArray.from_ijk(small_grid, dense), dense


def reference_apply_op(x: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    """7-point periodic operator on a dense array (test oracle)."""
    return alpha * x + beta * (
        np.roll(x, -1, 0)
        + np.roll(x, 1, 0)
        + np.roll(x, -1, 1)
        + np.roll(x, 1, 1)
        + np.roll(x, -1, 2)
        + np.roll(x, 1, 2)
    )
