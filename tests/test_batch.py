"""Cross-rank stacking: a batched grid must behave as N independent grids."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray
from repro.bricks.batch import BatchedGrid
from repro.dsl.codegen import compile_stencil
from repro.dsl.library import APPLY_OP

CONSTS = {"alpha": -6.0, "beta": 1.0}


@pytest.fixture
def base_grid(ordering):
    return BrickGrid((2, 3, 2), 4, ghost_bricks=1, ordering=ordering)


@pytest.fixture
def batched(base_grid):
    return BatchedGrid(base_grid, 3)


class TestBatchedGridStructure:
    def test_slot_counts(self, base_grid, batched):
        assert batched.num_slots == 3 * base_grid.num_slots
        assert batched.num_interior == 3 * base_grid.num_interior
        assert batched.slots_per_rank == base_grid.num_slots

    def test_adjacency_is_block_diagonal(self, base_grid, batched):
        """Brick neighbourhoods never cross rank blocks: each block is
        the base adjacency offset into its own slot range."""
        S = base_grid.num_slots
        for k in range(3):
            block = batched.adjacency[k * S : (k + 1) * S]
            assert np.array_equal(block, base_grid.adjacency + k * S)
            assert block.min() >= k * S and block.max() < (k + 1) * S

    def test_interior_and_ghost_slots_tile(self, base_grid, batched):
        S = base_grid.num_slots
        for k in range(3):
            sl = batched.rank_slice(k)
            assert sl == slice(k * S, (k + 1) * S)
        assert np.array_equal(
            batched.interior_slots[: base_grid.num_interior],
            base_grid.interior_slots,
        )
        assert np.array_equal(
            np.sort(np.concatenate([batched.interior_slots, batched.ghost_slots])),
            np.arange(batched.num_slots),
        )

    def test_slot_to_grid_tiles(self, base_grid, batched):
        assert np.array_equal(
            batched.slot_to_grid,
            np.tile(base_grid.slot_to_grid, (3, 1)),
        )

    def test_geometry_key_embeds_base(self, base_grid, batched):
        assert batched.geometry_key == ("batched", base_grid.geometry_key, 3)
        assert BatchedGrid(base_grid, 2).geometry_key != batched.geometry_key

    def test_rank_validation(self, base_grid, batched):
        with pytest.raises(ValueError):
            BatchedGrid(base_grid, 0)
        with pytest.raises(IndexError):
            batched.rank_slice(3)


class TestBatchedExecution:
    @pytest.mark.parametrize("planned", [False, True])
    def test_one_call_equals_rank_loop(self, base_grid, batched, rng, planned):
        """One vectorised kernel invocation over the stacked field must
        reproduce, byte for byte, a Python loop over per-rank fields."""
        per_rank = []
        for _ in range(3):
            f = BrickedArray.from_ijk(base_grid, rng.random(base_grid.shape_cells))
            f.fill_ghost_periodic()
            per_rank.append(f)

        stacked_x = BrickedArray(
            batched,
            np.concatenate([f.data for f in per_rank]),
        )
        stacked_fields = {
            "x": stacked_x,
            "Ax": BrickedArray.zeros(batched),
        }
        stacked_fields["x"].planned_gather = planned
        kernel = compile_stencil(APPLY_OP, base_grid.brick_dim)
        kernel.apply(stacked_fields, CONSTS)

        S = base_grid.num_slots
        for k, f in enumerate(per_rank):
            fields = {"x": f, "Ax": BrickedArray.zeros(base_grid)}
            kernel.apply(fields, CONSTS)
            assert np.array_equal(
                stacked_fields["Ax"].data[k * S : (k + 1) * S],
                fields["Ax"].data,
            ), k

    def test_per_rank_views_alias_stacked(self, base_grid, batched):
        """The engine rebinds per-rank ``data`` to stacked slices;
        writes through either side must be visible to the other."""
        stacked = BrickedArray.zeros(batched)
        S = base_grid.num_slots
        view = BrickedArray(base_grid, stacked.data[S : 2 * S])
        view.data[...] = 7.0
        assert np.all(stacked.data[S : 2 * S] == 7.0)
        assert np.all(stacked.data[:S] == 0.0)
