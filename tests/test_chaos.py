"""The chaos harness: seeded crash matrix, recovery SLOs, ledger rows.

Acceptance contract (ISSUE 6): the crash matrix is seed-deterministic,
every cell recovers to the reference tolerance (bit-identically, since
recovery replays from a coordinated checkpoint or a deterministic
restart), the storm cell degrades and fails the gate — the inverted
self-test — and the sweep folds into the same schema-versioned JSONL
ledger as perf runs.
"""

import pytest

from repro.faults.chaos import (
    CHAOS_BENCHMARK,
    chaos_ledger_entry,
    chaos_passed,
    chaos_scenarios,
    chaos_sweep,
    render_chaos_sweep,
    storm_scenario,
)
from repro.faults.sweep import SweepRow, sweep_ledger_entry
from repro.obs.ledger import PerfLedger

# the matrix is exercised on 2 ranks with a single cell per axis so the
# suite stays fast; the CI chaos-smoke job runs the full 8-rank matrix
SMALL = dict(
    rank_dims=(2, 1, 1),
    crash_cycles=(2,),
    crash_counts=(1,),
    checkpoint_intervals=(2,),
)


@pytest.fixture(scope="module")
def rows():
    return chaos_sweep(seed=2024, **SMALL)


class TestScenarioMatrix:
    def test_victims_are_seed_deterministic(self):
        a = chaos_scenarios(7, num_ranks=8)
        b = chaos_scenarios(7, num_ranks=8)
        assert a == b
        c = chaos_scenarios(8, num_ranks=8)
        assert [s.plan for s in a] != [s.plan for s in c]

    def test_matrix_covers_every_cell(self):
        scs = chaos_scenarios(
            7, num_ranks=8, crash_cycles=(1, 3), crash_counts=(1, 2),
            checkpoint_intervals=(1, 2),
        )
        assert len(scs) == 8
        assert len({s.name for s in scs}) == 8

    def test_crash_count_leaves_a_survivor(self):
        scs = chaos_scenarios(
            7, num_ranks=2, crash_cycles=(1,), crash_counts=(5,),
            checkpoint_intervals=(1,),
        )
        assert all(len(s.plan.specs) == 1 for s in scs)

    def test_single_rank_matrix_rejected(self):
        with pytest.raises(ValueError, match="distributed"):
            chaos_scenarios(7, num_ranks=1)

    def test_storm_scenario_is_persistent(self):
        sc = storm_scenario(rank=3)
        assert sc.expect_status == "failed_faults"
        (spec,) = sc.plan.specs
        assert spec.max_hits is None
        assert spec.rank == 3


class TestSweepOutcomes:
    def test_every_cell_recovers_to_reference_tolerance(self, rows):
        for r in rows:
            assert r.status == "converged", r.scenario
            assert r.tolerance_met, r.scenario
            assert r.bit_identical, r.scenario
            assert r.crashes >= 1
            assert r.recovered_ranks, r.scenario
            assert r.mttr_ms > 0

    def test_sweep_is_deterministic(self, rows):
        import dataclasses

        # everything but the wall-clock MTTR is a pure function of the seed
        def stripped(rs):
            return [dataclasses.replace(r, mttr_ms=0.0) for r in rs]

        assert stripped(chaos_sweep(seed=2024, **SMALL)) == stripped(rows)

    def test_gate_passes_on_clean_matrix(self, rows):
        assert chaos_passed(rows)

    def test_gate_fails_on_unrecovered_cell(self, rows):
        import dataclasses

        broken = [dataclasses.replace(rows[0], bit_identical=False)]
        broken += rows[1:]
        assert not chaos_passed(broken)

    def test_storm_run_fails_the_gate(self):
        """The inverted self-test: a sweep containing an unrecoverable
        crash must report failure even when the matrix cells recover."""
        rows = chaos_sweep(seed=2024, storm=True, **SMALL)
        storm = next(r for r in rows if r.scenario == "crash-storm")
        assert storm.status == "failed_faults"
        assert storm.rollbacks > 0
        assert not chaos_passed(rows, storm=True)

    def test_render_mentions_every_cell(self, rows):
        text = render_chaos_sweep(rows)
        for r in rows:
            assert r.scenario in text
        assert "mttr" in text


class TestChaosLedger:
    def test_entry_has_slo_metrics_per_cell(self, rows):
        entry = chaos_ledger_entry(rows, seed=2024, rank_dims=(2, 1, 1))
        assert entry.benchmark == CHAOS_BENCHMARK
        assert entry.source == "chaossweep"
        for r in rows:
            assert entry.metrics[f"{r.scenario}.mttr_ms"] == r.mttr_ms
            assert entry.metrics[f"{r.scenario}.cycles_lost"] == float(
                r.cycles_lost
            )
        assert entry.metrics["unrecovered_cells"] == 0.0

    def test_storm_cell_excluded_from_slo_metrics(self):
        rows = chaos_sweep(seed=2024, storm=True, **SMALL)
        entry = chaos_ledger_entry(rows, seed=2024, rank_dims=(2, 1, 1))
        assert "crash-storm.mttr_ms" not in entry.metrics
        # ...but the per-cell context still records its degradation
        statuses = {c["scenario"]: c["status"] for c in entry.context["cells"]}
        assert statuses["crash-storm"] == "failed_faults"

    def test_entry_round_trips_through_the_ledger(self, rows, tmp_path):
        entry = chaos_ledger_entry(rows, seed=2024, rank_dims=(2, 1, 1))
        ledger = PerfLedger(tmp_path)
        ledger.record(entry)
        (loaded,) = ledger.entries(CHAOS_BENCHMARK)
        assert loaded.metrics == entry.metrics
        assert loaded.context["seed"] == 2024
        assert loaded.schema == entry.schema


class TestFaultSweepLedger:
    """Satellite: ``repro faultsweep`` folds into the same ledger dir."""

    def make_row(self, name, status="converged", identical=True):
        return SweepRow(
            scenario=name, status=status, injected=1, detected=1,
            retries=1, rollbacks=0, clean_vcycles=11, executed_vcycles=11,
            final_residual=1e-11, bit_identical=identical, overhead_ms=0.5,
        )

    def test_entry_shape_matches_perf_records(self, tmp_path):
        rows = [self.make_row("drop-message"), self.make_row("sdc-nan")]
        entry = sweep_ledger_entry(
            rows, seed=7, rank_dims=(2, 1, 1), machine_name="Perlmutter"
        )
        assert entry.benchmark == "fault_sweep"
        assert entry.metrics["drop-message.overhead_ms"] == 0.5
        assert entry.metrics["sdc-nan.extra_vcycles"] == 0.0
        assert entry.metrics["unexpected_outcomes"] == 0.0
        PerfLedger(tmp_path).record(entry)
        (loaded,) = PerfLedger(tmp_path).entries("fault_sweep")
        assert loaded.source == "faultsweep"
        assert loaded.context["machine"] == "Perlmutter"

    def test_unexpected_outcomes_counted(self):
        rows = [
            self.make_row("ok"),
            self.make_row("stuck", status="max_vcycles", identical=False),
            self.make_row("degraded", status="failed_faults", identical=False),
        ]
        entry = sweep_ledger_entry(rows, seed=7, rank_dims=(2, 1, 1))
        # failed_faults is graceful degradation, not an unexpected outcome
        assert entry.metrics["unexpected_outcomes"] == 1.0
