"""The textual DSL parser: the paper's Figure 1, verbatim."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import APPLY_OP, analyze, compile_stencil
from repro.dsl.parser import PAPER_FIGURE_1, DslSyntaxError, parse_dsl


class TestFigure1:
    @pytest.fixture(scope="class")
    def stencil(self):
        return parse_dsl(PAPER_FIGURE_1, name="applyOp-from-text")

    def test_parses(self, stencil):
        assert len(stencil.assignments) == 1

    def test_same_analysis_as_library_stencil(self, stencil):
        parsed = analyze(stencil)
        library = analyze(APPLY_OP)
        assert parsed.radius == library.radius == 1
        assert parsed.bytes_per_point == library.bytes_per_point == 16
        assert parsed.offsets == library.offsets

    def test_executes_correctly(self, stencil, rng):
        grid = BrickGrid((2, 2, 2), 4)
        dense = rng.random((8, 8, 8))
        x = BrickedArray.from_ijk(grid, dense)
        x.fill_ghost_periodic()
        out = BrickedArray.zeros(grid)
        compile_stencil(stencil, 4).apply(
            {"x": x, "Ax": out}, {"alpha": -6.0, "beta": 1.0}
        )
        oracle = -6.0 * dense + sum(
            np.roll(dense, s, a) for a in range(3) for s in (1, -1)
        )
        np.testing.assert_allclose(out.to_ijk(), oracle, rtol=1e-12)

    def test_flop_count_differs_only_by_association(self, stencil):
        # the figure writes beta * each neighbour (7 multiplies + 6
        # adds = 13 flops); the library's factored form gives 8
        assert analyze(stencil).flops_per_point == 13


class TestMultiStatement:
    def test_fused_kernel(self):
        src = """
i = Index(0)
j = Index(1)
k = Index(2)
x = Grid("x", 3)
Ax = Grid("Ax", 3)
b = Grid("b", 3)
r = Grid("r", 3)
gamma = ConstRef("gamma")
x(i, j, k).assign(x(i, j, k) + gamma * Ax(i, j, k) - gamma * b(i, j, k))
r(i, j, k).assign(b(i, j, k) - Ax(i, j, k))
"""
        stencil = parse_dsl(src, name="fused")
        assert stencil.output_grids == ("x", "r")
        assert analyze(stencil).bytes_per_point == 40


class TestRejection:
    def test_imports_rejected(self):
        with pytest.raises(DslSyntaxError, match="Import"):
            parse_dsl("import os")

    def test_loops_rejected(self):
        with pytest.raises(DslSyntaxError, match="For"):
            parse_dsl("for q in range(3):\n    pass")

    def test_function_defs_rejected(self):
        with pytest.raises(DslSyntaxError, match="FunctionDef"):
            parse_dsl("def f():\n    return 1")

    def test_foreign_attributes_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_dsl("x = Grid('x', 3)\nx.name.upper()")
        with pytest.raises(DslSyntaxError, match="only the .assign"):
            parse_dsl("x = Grid('x', 3)\ny = x.name")

    def test_unknown_names_rejected(self):
        with pytest.raises(DslSyntaxError, match="failed to evaluate"):
            parse_dsl("i = Index(0)\nprint(i)")

    def test_no_assign_rejected(self):
        with pytest.raises(DslSyntaxError, match="never called"):
            parse_dsl("i = Index(0)")

    def test_syntax_errors_reported(self):
        with pytest.raises(DslSyntaxError, match="not valid DSL"):
            parse_dsl("i = = Index(0)")

    def test_power_operator_rejected(self):
        with pytest.raises(DslSyntaxError, match="operator"):
            parse_dsl(
                "i = Index(0)\nj = Index(1)\nk = Index(2)\n"
                "x = Grid('x', 3)\ny = Grid('y', 3)\n"
                "y(i, j, k).assign(x(i, j, k) ** 2)"
            )

    def test_builtins_unreachable(self):
        with pytest.raises(DslSyntaxError):
            parse_dsl("q = open('/etc/passwd')\nq2 = Index(0)")
