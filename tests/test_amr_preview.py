"""AMR load-balancing preview (Section IX future work)."""

import pytest

from repro.harness.amr_preview import (
    RefinementStudy,
    _morton_key,
    assign_patches,
    load_balance,
    render_balance,
)
from repro.machines import MACHINES, PERLMUTTER


class TestRefinementMap:
    def test_fraction_honoured(self):
        study = RefinementStudy(refine_fraction=0.1)
        refine = study.refinement_map()
        assert refine.sum() == round(0.1 * refine.size)

    def test_refinement_is_a_central_ball(self):
        study = RefinementStudy(patches_per_dim=8, refine_fraction=0.05)
        refine = study.refinement_map()
        centre = refine[3:5, 3:5, 3:5]
        assert centre.all()
        assert not refine[0, 0, 0]

    def test_at_least_one_patch(self):
        study = RefinementStudy(refine_fraction=0.0001)
        assert study.refinement_map().sum() == 1


class TestMortonKey:
    def test_locality_ordering(self):
        # Z-order keeps (0,0,0) and (1,1,1) adjacent, far from (7,7,7)
        a = _morton_key((0, 0, 0))
        b = _morton_key((1, 1, 1))
        c = _morton_key((7, 7, 7))
        assert a < b < c

    def test_bijective_on_small_cube(self):
        keys = {
            _morton_key((x, y, z))
            for x in range(4)
            for y in range(4)
            for z in range(4)
        }
        assert len(keys) == 64


class TestAssignment:
    def test_all_patches_assigned_once(self):
        study = RefinementStudy()
        for policy in ("block", "morton"):
            flags = assign_patches(study, 8, policy)
            assert sum(len(f) for f in flags) == 512

    def test_refined_count_preserved(self):
        study = RefinementStudy()
        expected = study.refinement_map().sum()
        for policy in ("block", "morton"):
            flags = assign_patches(study, 8, policy)
            assert sum(sum(f) for f in flags) == expected

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            assign_patches(RefinementStudy(), 8, "random")


class TestLoadBalance:
    def test_morton_beats_block_everywhere(self):
        """The Section IX claim quantified: load balancing is critical,
        and interleaved assignment recovers it."""
        for machine in MACHINES.values():
            block = load_balance(machine, num_ranks=8, policy="block")
            morton = load_balance(machine, num_ranks=8, policy="morton")
            assert morton.efficiency > block.efficiency
            assert morton.efficiency >= 0.95
            assert block.efficiency <= 0.90

    def test_uniform_refinement_is_balanced_either_way(self):
        study = RefinementStudy(refine_fraction=1.0)
        block = load_balance(PERLMUTTER, study, 8, "block")
        assert block.efficiency == pytest.approx(1.0)

    def test_refined_patch_costs_more(self):
        study = RefinementStudy()
        plain = study.patch_work_seconds(PERLMUTTER, refined=False)
        refined = study.patch_work_seconds(PERLMUTTER, refined=True)
        # 8x the cells plus the coarse pass; kernel-launch latency
        # (fixed per pass) keeps the ratio below the naive 9x
        assert refined > 2.5 * plain

    def test_per_rank_times_positive(self):
        r = load_balance(PERLMUTTER, num_ranks=8, policy="morton")
        assert all(t > 0 for t in r.per_rank_seconds)
        assert len(r.per_rank_seconds) == 8

    def test_render(self):
        r = load_balance(PERLMUTTER, num_ranks=8, policy="block")
        text = render_balance([r])
        assert "efficiency" in text and "Perlmutter" in text
