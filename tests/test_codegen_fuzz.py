"""Property-based fuzzing of the DSL -> kernel pipeline.

Random stencils (random offsets within radius 2, random constant
coefficients, one or two fused statements) are compiled and executed on
bricked data, then checked against a dense ``np.roll`` oracle built
from the same structure.  This is the broadest correctness net over the
code generator: any mis-translated slice, botched CSE hoist, or halo
mix-up shows up as a numeric mismatch.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import Grid, Stencil, compile_stencil, indices

N = 8
B = 4

offsets_strategy = st.lists(
    st.tuples(
        st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2)
    ),
    min_size=1,
    max_size=6,
    unique=True,
)
coeffs_strategy = st.lists(
    st.floats(-4.0, 4.0).filter(lambda c: abs(c) > 1e-3),
    min_size=1,
    max_size=6,
)


def build_stencil(offsets, coeffs):
    i, j, k = indices()
    x, out = Grid("x"), Grid("out")
    expr = None
    for (dx, dy, dz), c in zip(offsets, coeffs):
        term = c * x(i + dx, j + dy, k + dz)
        expr = term if expr is None else expr + term
    return Stencil("fuzz", [out(i, j, k).assign(expr)])


def dense_oracle(dense, offsets, coeffs):
    out = np.zeros_like(dense)
    for (dx, dy, dz), c in zip(offsets, coeffs):
        shifted = np.roll(
            np.roll(np.roll(dense, -dx, 0), -dy, 1), -dz, 2
        )
        out += c * shifted
    return out


@settings(max_examples=60, deadline=None)
@given(offsets=offsets_strategy, coeffs=coeffs_strategy, seed=st.integers(0, 2**31))
def test_random_stencil_matches_oracle(offsets, coeffs, seed):
    coeffs = (coeffs * len(offsets))[: len(offsets)]  # recycle to match
    stencil = build_stencil(offsets, coeffs)
    grid = BrickGrid((N // B,) * 3, B)
    dense = np.random.default_rng(seed).random((N, N, N))
    x = BrickedArray.from_ijk(grid, dense)
    x.fill_ghost_periodic()
    out = BrickedArray.zeros(grid)
    compile_stencil(stencil, B).apply({"x": x, "out": out}, {})
    oracle = dense_oracle(dense, offsets, coeffs)
    np.testing.assert_allclose(out.to_ijk(), oracle, rtol=1e-11, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    offsets=offsets_strategy,
    coeffs=coeffs_strategy,
    gamma=st.floats(-1.0, 1.0),
    seed=st.integers(0, 2**31),
)
def test_random_fused_statements_are_simultaneous(offsets, coeffs, gamma, seed):
    """A fused (two-statement) kernel must evaluate both right-hand
    sides against pre-statement values, whatever the stencil."""
    coeffs = (coeffs * len(offsets))[: len(offsets)]
    i, j, k = indices()
    x, out, y = Grid("x"), Grid("out"), Grid("y")
    expr = None
    for (dx, dy, dz), c in zip(offsets, coeffs):
        term = c * x(i + dx, j + dy, k + dz)
        expr = term if expr is None else expr + term
    stencil = Stencil(
        "fuzz2",
        [
            out(i, j, k).assign(expr),
            y(i, j, k).assign(y(i, j, k) + gamma * y(i, j, k)),
        ],
    )
    grid = BrickGrid((N // B,) * 3, B)
    rng = np.random.default_rng(seed)
    dense_x, dense_y = rng.random((N, N, N)), rng.random((N, N, N))
    fields = {
        "x": BrickedArray.from_ijk(grid, dense_x),
        "y": BrickedArray.from_ijk(grid, dense_y),
        "out": BrickedArray.zeros(grid),
    }
    fields["x"].fill_ghost_periodic()
    compile_stencil(stencil, B).apply(fields, {})
    np.testing.assert_allclose(
        fields["out"].to_ijk(), dense_oracle(dense_x, offsets, coeffs),
        rtol=1e-11, atol=1e-12,
    )
    # oracle written in the kernel's own association order: with
    # gamma near -1 the subtraction cancels and (1+gamma)*y rounds
    # differently
    np.testing.assert_allclose(
        fields["y"].to_ijk(), dense_y + gamma * dense_y, rtol=1e-12
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    ordering=st.sampled_from(["lexicographic", "surface-major"]),
    dims=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
)
def test_seven_point_invariant_under_layout(seed, ordering, dims):
    """The canonical 7-point result must not depend on brick grid shape
    or storage ordering."""
    from repro.dsl import APPLY_OP

    rng = np.random.default_rng(seed)
    cells = tuple(4 * d for d in dims)
    dense = rng.random(cells)
    grid = BrickGrid(dims, 4, ordering=ordering)
    x = BrickedArray.from_ijk(grid, dense)
    x.fill_ghost_periodic()
    out = BrickedArray.zeros(grid)
    compile_stencil(APPLY_OP, 4).apply(
        {"x": x, "Ax": out}, {"alpha": -6.0, "beta": 1.0}
    )
    oracle = -6.0 * dense + sum(
        np.roll(dense, s, a) for a in range(3) for s in (1, -1)
    )
    # association order differs between oracle and kernel: atol absorbs
    # the cancellation noise near zero
    np.testing.assert_allclose(out.to_ijk(), oracle, rtol=1e-12, atol=1e-13)
