"""Stencil fusion: one fused kernel must be bit-identical to its stages."""

import numpy as np
import pytest

from repro.bricks import BrickedArray
from repro.dsl.analysis import analyze
from repro.dsl.ast import Grid, Stencil, indices
from repro.dsl.codegen import compile_stencil
from repro.dsl.fusion import compose_stencils
from repro.dsl.library import (
    APPLY_OP,
    FUSED_SMOOTH,
    FUSED_SMOOTH_RESIDUAL,
    FUSED_STENCILS,
    SMOOTH,
    SMOOTH_RESIDUAL,
    fused_ai_table,
)

CONSTS = {"alpha": -6.0, "beta": 1.0, "gamma": 1.0 / 12.0}


def make_fields(grid, rng):
    fields = {}
    for name in ("x", "b", "Ax", "r"):
        f = BrickedArray.from_ijk(grid, rng.random(grid.shape_cells))
        f.fill_ghost_periodic()
        fields[name] = f
    return fields


class TestFusedBitIdentity:
    @pytest.mark.parametrize("tail", [SMOOTH, SMOOTH_RESIDUAL])
    def test_fused_matches_staged(self, small_grid, rng, tail):
        """Running the fused kernel once must leave *every* field —
        intermediates included — byte-equal to running the stages."""
        B = small_grid.brick_dim
        staged = make_fields(small_grid, rng)
        fused = {name: f.copy() for name, f in staged.items()}

        compile_stencil(APPLY_OP, B).apply(staged, CONSTS)
        compile_stencil(tail, B).apply(staged, CONSTS)

        fused_stencil = FUSED_STENCILS[tail.name]
        compile_stencil(fused_stencil, B).apply(fused, CONSTS)

        for name in staged:
            assert np.array_equal(fused[name].data, staged[name].data), name

    def test_fused_matches_staged_offset_mode(self, small_grid, rng):
        """Same contract on the planned per-offset gather path."""
        staged = make_fields(small_grid, rng)
        fused = {name: f.copy() for name, f in staged.items()}
        for f in fused.values():
            f.planned_gather = True

        B = small_grid.brick_dim
        compile_stencil(APPLY_OP, B).apply(staged, CONSTS)
        compile_stencil(SMOOTH_RESIDUAL, B).apply(staged, CONSTS)
        compile_stencil(FUSED_SMOOTH_RESIDUAL, B).apply(fused, CONSTS)

        for name in staged:
            assert np.array_equal(fused[name].data, staged[name].data), name


class TestComposeStencils:
    def test_intermediate_becomes_internal(self):
        """The fused pipeline reads ``x`` with a halo but no longer
        *inputs* ``Ax`` — the substituted subtree carries the data."""
        an = analyze(FUSED_SMOOTH)
        assert "Ax" not in an.input_grids
        assert "Ax" in an.output_grids  # still stored
        assert "x" in an.halo_grids

    def test_cse_dedups_substituted_subtree(self):
        """``smooth+residual`` reads ``Ax`` at two sites; the fused
        kernel must still pay the applyOp flops once."""
        op = analyze(APPLY_OP).effective_flops_per_point
        tail = analyze(SMOOTH_RESIDUAL).effective_flops_per_point
        fused = analyze(FUSED_SMOOTH_RESIDUAL).effective_flops_per_point
        assert fused == op + tail

    def test_offset_read_of_intermediate_rejected(self):
        i, j, k = indices()
        x, Ax = Grid("x"), Grid("Ax")
        consumer = Stencil("shift", [x(i, j, k).assign(Ax(i + 1, j, k))])
        with pytest.raises(ValueError, match="halo"):
            compose_stencils("bad", (APPLY_OP, consumer))

    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            compose_stencils("solo", (APPLY_OP,))

    def test_fused_ai_improves_on_staged_sum(self):
        """Fusion's point: same flops over less traffic. Every fused
        pipeline must report a strictly positive effective AI and a
        byte count below the staged stages' combined streams."""
        table = fused_ai_table()
        assert set(table) == {s.name for s in FUSED_STENCILS.values()}
        for name, (flops, bytes_pt, ai) in table.items():
            assert flops > 0 and bytes_pt > 0
            assert ai == pytest.approx(flops / bytes_pt)
