"""Protocol selection and NIC binding models."""

import pytest

from repro.comm.mapping import NicBinding, binding_hop_penalty
from repro.comm.protocols import (
    CxiSettings,
    Protocol,
    matching_overhead_factor,
    select_protocol,
)


class TestProtocolSelection:
    def test_defaults_use_eager_for_small(self):
        s = CxiSettings.defaults()
        assert select_protocol(1024, s) is Protocol.EAGER

    def test_defaults_use_rendezvous_for_large(self):
        s = CxiSettings.defaults()
        assert select_protocol(1 << 20, s) is Protocol.RENDEZVOUS

    def test_threshold_boundary(self):
        s = CxiSettings(rdzv_eager_size=4096, rdzv_threshold=4096)
        assert select_protocol(4095, s) is Protocol.EAGER
        assert select_protocol(4096, s) is Protocol.RENDEZVOUS

    def test_paper_settings_force_rendezvous_always(self):
        for s in (CxiSettings.paper_perlmutter(), CxiSettings.paper_frontier()):
            assert select_protocol(0, s) is Protocol.RENDEZVOUS
            assert select_protocol(8, s) is Protocol.RENDEZVOUS

    def test_min_of_both_variables_governs(self):
        s = CxiSettings(rdzv_eager_size=0, rdzv_threshold=1 << 30)
        assert select_protocol(8, s) is Protocol.RENDEZVOUS

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            select_protocol(-1, CxiSettings.defaults())


class TestHardwareMatching:
    def test_frontier_enables_hw_match(self):
        assert CxiSettings.paper_frontier().hw_match
        assert not CxiSettings.paper_perlmutter().hw_match

    def test_hw_match_reduces_overhead(self):
        assert matching_overhead_factor(CxiSettings.paper_frontier()) < 1.0
        assert matching_overhead_factor(CxiSettings.paper_perlmutter()) == 1.0


class TestBinding:
    def test_closest_binding_is_free(self):
        for gpu_nic in (True, False):
            p = binding_hop_penalty(NicBinding.CLOSEST, gpu_nic)
            assert p.latency_s == 0.0
            assert p.bandwidth_factor == 1.0

    def test_misbinding_costs(self):
        p = binding_hop_penalty(NicBinding.DEFAULT, nic_attached_to_gpu=False)
        assert p.latency_s > 0
        assert p.bandwidth_factor < 1.0

    def test_worst_is_worse_than_default(self):
        d = binding_hop_penalty(NicBinding.DEFAULT, False)
        w = binding_hop_penalty(NicBinding.WORST, False)
        assert w.latency_s > d.latency_s
        assert w.bandwidth_factor < d.bandwidth_factor

    def test_gpu_attached_nic_amplifies_misbinding(self):
        cpu = binding_hop_penalty(NicBinding.DEFAULT, nic_attached_to_gpu=False)
        gpu = binding_hop_penalty(NicBinding.DEFAULT, nic_attached_to_gpu=True)
        assert gpu.latency_s > cpu.latency_s
        assert gpu.bandwidth_factor < cpu.bandwidth_factor
