"""Experiment drivers: the paper's qualitative claims must hold."""

import pytest

from repro.harness import experiments as E


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return E.fig3_time_per_level()

    def test_all_machines_present(self, result):
        assert set(result.level_totals) == {"Perlmutter", "Frontier", "Sunspot"}

    def test_six_levels(self, result):
        assert all(len(v) == 6 for v in result.level_totals.values())

    def test_time_decreases_down_to_the_bottom(self, result):
        for totals in result.level_totals.values():
            assert all(a > b for a, b in zip(totals[:-2], totals[1:-1]))

    def test_coarsest_level_bump(self, result):
        """100 bottom smooths make level 5 cost more than level 4."""
        for totals in result.level_totals.values():
            assert totals[5] > totals[4]

    def test_sunspot_slowest_at_coarse_levels(self, result):
        """Paper: P/F get faster at the coarsest levels than Sunspot
        (CXI settings + GPU-aware MPI)."""
        for lev in (3, 4, 5):
            s = result.level_totals["Sunspot"][lev]
            assert s > result.level_totals["Perlmutter"][lev]
            assert s > result.level_totals["Frontier"][lev]

    def test_breakdown_sums_to_totals(self, result):
        for name, levels in result.level_breakdown.items():
            for lev, d in enumerate(levels):
                assert sum(d.values()) == pytest.approx(
                    result.level_totals[name][lev]
                )


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return E.fig4_vs_hpgmg()

    def test_perlmutter_ratio_near_paper(self, result):
        """Paper: 1.58x faster than HPGMG on Perlmutter."""
        assert result.relative_performance["Perlmutter"] == pytest.approx(
            1.58, abs=0.15
        )

    def test_frontier_ratio_near_paper(self, result):
        """Paper: 1.46x on Frontier."""
        assert result.relative_performance["Frontier"] == pytest.approx(
            1.46, abs=0.15
        )

    def test_sunspot_roughly_parity(self, result):
        """Paper: 'similar performance' between HPGMG and Sunspot."""
        assert 0.6 <= result.relative_performance["Sunspot"] <= 1.2

    def test_ordering_of_machines(self, result):
        rp = result.relative_performance
        assert rp["Perlmutter"] > rp["Frontier"] > rp["Sunspot"]


class TestTable2:
    @pytest.fixture(scope="class")
    def fractions(self):
        return E.table2_op_breakdown()

    def test_smooth_residual_dominates(self, fractions):
        for m, fr in fractions.items():
            assert fr["smooth+residual"] == max(fr.values()), m

    def test_within_paper_tolerance(self, fractions):
        """Each share within 8 percentage points of Table II."""
        for machine, paper in E.TABLE2_PAPER.items():
            for op, expected in paper.items():
                got = fractions[machine][op]
                assert got == pytest.approx(expected, abs=0.08), (machine, op)

    def test_intergrid_ops_are_minor(self, fractions):
        for fr in fractions.values():
            assert fr["restriction"] < 0.05
            assert fr["interpolation+increment"] < 0.08

    def test_exchange_share_is_10_to_25_percent(self, fractions):
        for fr in fractions.values():
            assert 0.10 <= fr["exchange"] <= 0.25


class TestFig5:
    @pytest.fixture(scope="class")
    def apply_series(self):
        return E.fig5_kernel_throughput("applyOp")

    def test_rates_increase_with_size(self, apply_series):
        for s in apply_series.values():
            pairs = sorted(zip(s.points, s.gstencil))
            rates = [r for _, r in pairs]
            assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_finest_level_near_ceiling(self, apply_series):
        """'Near ideal performance throughput for the finest grids'."""
        for s in apply_series.values():
            assert max(s.gstencil) >= 0.55 * s.ceiling_gstencil

    def test_fit_recovers_launch_latency(self, apply_series):
        """Empirical latencies between 5us and 20us (Section VI-A)."""
        for s in apply_series.values():
            assert 4e-6 <= s.fit.alpha <= 21e-6

    def test_nvidia_lowest_latency_highest_rate(self, apply_series):
        p = apply_series["Perlmutter"]
        for other in ("Frontier", "Sunspot"):
            assert p.fit.alpha < apply_series[other].fit.alpha
            assert p.fit.beta > apply_series[other].fit.beta

    def test_perlmutter_ceiling_matches_paper_quote(self, apply_series):
        assert apply_series["Perlmutter"].ceiling_gstencil == pytest.approx(88.75)

    def test_smooth_residual_series(self):
        series = E.fig5_kernel_throughput("smooth+residual")
        for s in series.values():
            # paper's reference flat line for smooth+residual is 40 G/s
            assert max(s.gstencil) < 45.0

    def test_fit_quality(self, apply_series):
        for s in apply_series.values():
            assert s.fit.r_squared > 0.999


class TestFig6:
    @pytest.fixture(scope="class")
    def series(self):
        return E.fig6_exchange_bandwidth()

    def test_bandwidth_increases_with_message_size(self, series):
        for s in series.values():
            pairs = sorted(zip(s.total_bytes, s.gbs))
            rates = [r for _, r in pairs]
            assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_below_nic_peak(self, series):
        for s in series.values():
            assert max(s.gbs) < s.nic_peak_gbs

    def test_frontier_highest_bandwidth(self, series):
        """Paper: 'Frontier provides the highest bandwidth at 16 GB/s,
        followed closely by Perlmutter', Sunspot behind at ~7."""
        f = max(series["Frontier"].gbs)
        p = max(series["Perlmutter"].gbs)
        s = max(series["Sunspot"].gbs)
        assert f > p > s
        assert f == pytest.approx(16.0, abs=2.0)
        assert p == pytest.approx(14.0, abs=2.0)
        assert s == pytest.approx(7.0, abs=1.5)

    def test_latency_ordering_and_range(self, series):
        """Fitted latencies between ~25us and ~200us, Frontier lowest."""
        alphas = {m: s.fit.alpha for m, s in series.items()}
        assert alphas["Frontier"] < alphas["Perlmutter"] < alphas["Sunspot"]
        assert 10e-6 <= alphas["Frontier"] <= 60e-6
        assert alphas["Sunspot"] <= 350e-6

    def test_latency_dominates_below_one_megabyte(self, series):
        """Paper: latency dominates for total sizes under ~1 MB."""
        for s in series.values():
            half = s.fit.half_rate_size()
            assert half > 1e5  # well above the coarsest levels' sizes


class TestFig7:
    def test_points_cover_all_machines_and_ops(self):
        pts = E.fig7_potential_speedup()
        assert set(pts) == {"Perlmutter", "Frontier", "Sunspot"}
        assert all(len(ops) == 5 for ops in pts.values())

    def test_speedups_at_least_one(self):
        for ops in E.fig7_potential_speedup().values():
            for fa, fr, sp in ops.values():
                assert sp >= 1.0
                assert 0 < fa <= 1 and 0 < fr <= 1


class TestScaling:
    def test_weak_scaling_efficiency_claim(self):
        """Paper: over 87% parallel efficiency when weak scaling."""
        for m in ("Perlmutter", "Frontier", "Sunspot"):
            r = E.fig8_weak_scaling(m)
            assert min(r.efficiency) >= 0.85, m
            assert r.efficiency[0] == 1.0

    def test_weak_scaling_reaches_512_gpus(self):
        r = E.fig8_weak_scaling("Perlmutter")
        assert r.ranks[-1] == 512

    def test_frontier_doubles_perlmutter_throughput_per_node(self):
        """Paper: 'Frontier presents almost double GStencil/s compared
        to Perlmutter' at equal node counts (2x ranks per node)."""
        p = E.fig8_weak_scaling("Perlmutter")
        f = E.fig8_weak_scaling("Frontier")
        ratio = f.gstencil[-1] / p.gstencil[-1]
        assert 1.3 <= ratio <= 2.2

    def test_weak_gstencil_grows_linearly(self):
        r = E.fig8_weak_scaling("Frontier")
        ratio = r.gstencil[-1] / r.gstencil[0]
        ideal = r.ranks[-1] / r.ranks[0]
        assert ratio >= 0.85 * ideal

    def test_strong_scaling_efficiency_nose_dive(self):
        """Paper Fig 9: efficiency collapses as latency dominates."""
        r = E.fig9_strong_scaling("Perlmutter")
        assert r.efficiency[0] == pytest.approx(1.0)
        assert r.efficiency[-1] < 0.5
        assert all(a >= b for a, b in zip(r.efficiency, r.efficiency[1:]))

    def test_strong_scaling_throughput_still_grows(self):
        r = E.fig9_strong_scaling("Frontier")
        assert all(a < b for a, b in zip(r.gstencil, r.gstencil[1:]))

    def test_sunspot_capped_at_16_nodes(self):
        r = E.fig8_weak_scaling("Sunspot")
        assert r.nodes[-1] == 16
        assert r.ranks[-1] == 192  # 96 PVC GPUs = 192 tiles


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return E.ablation_optimizations("Perlmutter")

    def test_all_optimizations_is_fastest_or_close(self, result):
        base = result.vcycle_seconds["all-optimizations"]
        for name, t in result.vcycle_seconds.items():
            if name in ("brick-4",):  # smaller bricks trade kernel perf
                continue  # for comm volume; model only sees the latter
            assert t >= base * 0.99, name

    def test_ca_is_the_biggest_single_lever(self, result):
        base = result.vcycle_seconds["all-optimizations"]
        no_ca = result.vcycle_seconds["no-communication-avoiding"]
        assert no_ca / base > 1.5

    def test_gpu_aware_matters(self, result):
        base = result.vcycle_seconds["all-optimizations"]
        assert result.vcycle_seconds["no-gpu-aware-mpi"] / base > 1.1
