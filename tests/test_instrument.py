"""The instrumentation recorder itself."""

from repro.instrument import KernelEvent, MessageEvent, Recorder


class TestRecorder:
    def test_kernel_aggregation(self):
        rec = Recorder()
        rec.kernel(0, "applyOp", 100)
        rec.kernel(0, "applyOp", 100)
        rec.kernel(1, "smooth", 50)
        assert rec.kernel_counts() == {(0, "applyOp"): 2, (1, "smooth"): 1}
        assert rec.kernel_points() == {(0, "applyOp"): 200, (1, "smooth"): 50}

    def test_message_aggregation(self):
        rec = Recorder()
        rec.message(0, 1000, "face", segments=1)
        rec.message(0, 24, "corner", segments=3, self_message=True)
        rec.message(2, 500, "edge")
        assert rec.message_bytes_by_level() == {0: 1024, 2: 500}
        assert rec.message_counts_by_level() == {0: 2, 2: 1}

    def test_events_are_frozen_records(self):
        ev = KernelEvent(0, "applyOp", 10)
        assert ev.level == 0 and ev.points == 10
        msg = MessageEvent(1, 64, "face", 1, False)
        assert msg.direction_kind == "face"

    def test_exchange_and_reduction_counters(self):
        rec = Recorder()
        rec.exchange(0)
        rec.exchange(0)
        rec.exchange(3)
        rec.reduction()
        assert rec.exchange_counts() == {0: 2, 3: 1}
        assert rec.reductions == 1

    def test_total_stencil_points(self):
        rec = Recorder()
        rec.kernel(0, "applyOp", 10)
        rec.kernel(1, "applyOp", 5)
        rec.kernel(0, "smooth", 7)
        assert rec.total_stencil_points() == 22
        assert rec.total_stencil_points(ops=("applyOp",)) == 15

    def test_clear_resets_everything(self):
        rec = Recorder()
        rec.kernel(0, "applyOp", 1)
        rec.message(0, 8, "face")
        rec.exchange(0)
        rec.reduction()
        rec.clear()
        assert not rec.kernels and not rec.messages
        assert rec.exchange_counts() == {}
        assert rec.reductions == 0

    def test_empty_aggregations(self):
        rec = Recorder()
        assert rec.kernel_counts() == {}
        assert rec.message_bytes_by_level() == {}
        assert rec.total_stencil_points() == 0
