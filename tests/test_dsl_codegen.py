"""Generated kernels must match dense NumPy oracles exactly."""

import numpy as np
import pytest

from tests.conftest import reference_apply_op
from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import (
    APPLY_OP,
    SMOOTH,
    SMOOTH_RESIDUAL,
    CompiledKernel,
    Grid,
    Stencil,
    compile_stencil,
    generate_source,
    indices,
)


@pytest.fixture
def fields(small_grid, rng):
    dense = {name: rng.random(small_grid.shape_cells) for name in "x b Ax r".split()}
    out = {}
    for name, arr in dense.items():
        f = BrickedArray.from_ijk(small_grid, arr)
        f.fill_ghost_periodic()
        out[name] = f
    return out, dense


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        src = generate_source(APPLY_OP, 4)
        compile(src, "<test>", "exec")

    def test_source_mentions_constants(self):
        src = generate_source(APPLY_OP, 4)
        assert "consts['alpha']" in src
        assert "consts['beta']" in src

    def test_cse_hoists_shared_reads(self):
        src = generate_source(SMOOTH_RESIDUAL, 4)
        # Ax and b are each read by both statements -> hoisted once
        assert src.count("bufs['Ax']") == 1
        assert src.count("bufs['b']") == 1

    def test_compute_then_store(self):
        """All _rhs temps are computed before any output store."""
        src = generate_source(SMOOTH_RESIDUAL, 4)
        first_store = src.index("outs[")
        assert src.rindex("_rhs1 =") < first_store

    def test_slices_reflect_brick_dim(self):
        src4 = generate_source(APPLY_OP, 4)
        src8 = generate_source(APPLY_OP, 8)
        assert "1:5" in src4 and "1:9" in src8


class TestKernelExecution:
    def test_apply_op_matches_oracle(self, fields):
        bricked, dense = fields
        k = compile_stencil(APPLY_OP, 4)
        k.apply(bricked, {"alpha": -6.0, "beta": 1.0})
        oracle = reference_apply_op(dense["x"], -6.0, 1.0)
        np.testing.assert_allclose(bricked["Ax"].to_ijk(), oracle, rtol=1e-14)

    def test_smooth_matches_oracle(self, fields):
        bricked, dense = fields
        k = compile_stencil(SMOOTH, 4)
        k.apply(bricked, {"gamma": 0.01})
        oracle = dense["x"] + 0.01 * dense["Ax"] - 0.01 * dense["b"]
        np.testing.assert_allclose(bricked["x"].to_ijk(), oracle, rtol=1e-14)

    def test_smooth_residual_uses_preupdate_values(self, fields):
        bricked, dense = fields
        k = compile_stencil(SMOOTH_RESIDUAL, 4)
        k.apply(bricked, {"gamma": 0.01})
        # residual computed from pre-update Ax/b, even though x changes
        np.testing.assert_allclose(
            bricked["r"].to_ijk(), dense["b"] - dense["Ax"], rtol=1e-14
        )
        np.testing.assert_allclose(
            bricked["x"].to_ijk(),
            dense["x"] + 0.01 * dense["Ax"] - 0.01 * dense["b"],
            rtol=1e-14,
        )

    def test_division_kernel(self, fields):
        bricked, dense = fields
        i, j, k = indices()
        x, y = Grid("x"), Grid("r")
        s = Stencil("halve", [y(i, j, k).assign(x(i, j, k) / 2.0)])
        compile_stencil(s, 4).apply(bricked, {})
        np.testing.assert_allclose(bricked["r"].to_ijk(), dense["x"] / 2.0)

    def test_wide_stencil_radius_2(self, small_grid, rng):
        dense = rng.random(small_grid.shape_cells)
        f = BrickedArray.from_ijk(small_grid, dense)
        f.fill_ghost_periodic()
        out = BrickedArray.zeros(small_grid)
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        s = Stencil("r2", [y(i, j, k).assign(x(i + 2, j, k) + x(i, j - 2, k))])
        compile_stencil(s, 4).apply({"x": f, "y": out}, {})
        oracle = np.roll(dense, -2, 0) + np.roll(dense, 2, 1)
        np.testing.assert_allclose(out.to_ijk(), oracle)

    def test_apply_updates_ghost_bricks_too(self, fields):
        """CA requires the kernel to compute over the ghost shell."""
        bricked, _ = fields
        grid = bricked["x"].grid
        bricked["Ax"].data[grid.ghost_slots] = np.nan
        compile_stencil(APPLY_OP, 4).apply(bricked, {"alpha": -6.0, "beta": 1.0})
        assert np.isfinite(bricked["Ax"].data[grid.ghost_slots]).all()


class TestValidation:
    def test_missing_constant_raises(self, fields):
        bricked, _ = fields
        k = compile_stencil(APPLY_OP, 4)
        with pytest.raises(KeyError, match="alpha"):
            k.apply(bricked, {"beta": 1.0})

    def test_missing_field_raises(self, fields):
        bricked, _ = fields
        k = compile_stencil(APPLY_OP, 4)
        with pytest.raises(KeyError, match="Ax"):
            k.apply({"x": bricked["x"]}, {"alpha": -6.0, "beta": 1.0})

    def test_mixed_grids_rejected(self, fields, rng):
        bricked, _ = fields
        other = BrickedArray.zeros(BrickGrid((4, 3, 2), 4))
        k = compile_stencil(APPLY_OP, 4)
        with pytest.raises(ValueError, match="share"):
            k.apply({"x": bricked["x"], "Ax": other}, {"alpha": -6.0, "beta": 1.0})

    def test_brick_dim_mismatch_rejected(self, fields):
        bricked, _ = fields
        k = compile_stencil(APPLY_OP, 8)
        with pytest.raises(ValueError, match="brick_dim"):
            k.apply(bricked, {"alpha": -6.0, "beta": 1.0})

    def test_radius_exceeding_brick_rejected(self):
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        s = Stencil("too_wide", [y(i, j, k).assign(x(i + 3, j, k))])
        with pytest.raises(ValueError, match="radius"):
            CompiledKernel(s, 2)


class TestCaching:
    def test_compile_cache_hits(self):
        a = compile_stencil(APPLY_OP, 4)
        b = compile_stencil(APPLY_OP, 4)
        assert a is b

    def test_cache_distinguishes_brick_dim(self):
        assert compile_stencil(APPLY_OP, 4) is not compile_stencil(APPLY_OP, 8)

    def test_workspace_buffers_are_reused(self, fields):
        bricked, _ = fields
        k = compile_stencil(APPLY_OP, 4)
        ws: dict = {}
        k.apply(bricked, {"alpha": -6.0, "beta": 1.0}, workspace=ws)
        bufs = list(ws.values())
        k.apply(bricked, {"alpha": -6.0, "beta": 1.0}, workspace=ws)
        assert list(ws.values())[0] is bufs[0]
