"""Cache simulator, layouts, and the layout-traffic measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    BrickLayout,
    CacheConfig,
    CacheSim,
    RowMajorLayout,
    compulsory_traffic,
    measure_sweep,
    stencil_sweep_trace,
)


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(capacity_bytes=8192, line_bytes=64, ways=8)
        assert cfg.num_sets == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=1000, line_bytes=64, ways=8)
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=8192, line_bytes=60, ways=8)


class TestCacheSim:
    def cache(self, **kw):
        return CacheSim(CacheConfig(**{"capacity_bytes": 1024,
                                       "line_bytes": 64, "ways": 2, **kw}))

    def test_cold_miss_then_hit(self):
        sim = self.cache()
        assert not sim.access(0)
        assert sim.access(8)  # same line
        assert sim.stats.misses == 1
        assert sim.stats.hits == 1

    def test_lru_eviction(self):
        sim = self.cache()  # 8 sets, 2 ways
        stride = 8 * 64  # same set every time
        sim.access(0)
        sim.access(stride)
        sim.access(2 * stride)  # evicts line 0
        assert not sim.access(0)  # line 0 gone

    def test_lru_recency_update(self):
        sim = self.cache()
        stride = 8 * 64
        sim.access(0)
        sim.access(stride)
        sim.access(0)  # touch 0 again -> stride is now LRU
        sim.access(2 * stride)  # evicts stride, not 0
        assert sim.access(0)

    def test_writeback_counted_once(self):
        sim = self.cache()
        stride = 8 * 64
        sim.access(0, is_write=True)
        sim.access(stride)
        sim.access(2 * stride)  # evicts dirty line 0 -> writeback
        assert sim.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        sim = self.cache()
        stride = 8 * 64
        sim.access(0)
        sim.access(stride)
        sim.access(2 * stride)
        assert sim.stats.writebacks == 0

    def test_flush_writes_dirty_lines(self):
        sim = self.cache()
        sim.access(0, is_write=True)
        sim.access(64, is_write=True)
        sim.flush()
        assert sim.stats.writebacks == 2

    def test_dram_bytes(self):
        sim = self.cache()
        sim.access(0, is_write=True)
        sim.flush()
        assert sim.stats.dram_bytes == 2 * 64  # one fill + one writeback

    def test_hit_rate(self):
        sim = self.cache()
        sim.access(0)
        sim.access(0)
        assert sim.stats.hit_rate == pytest.approx(0.5)


class TestLayouts:
    @pytest.mark.parametrize(
        "layout", [RowMajorLayout(8), BrickLayout(8, 4), BrickLayout(8, 2)]
    )
    def test_bijection(self, layout):
        i, j, k = np.meshgrid(*([np.arange(8)] * 3), indexing="ij")
        addrs = layout.address(i.ravel(), j.ravel(), k.ravel())
        assert len(np.unique(addrs)) == 512
        assert addrs.min() == 0
        assert addrs.max() == layout.total_bytes - 8

    def test_brick_cells_contiguous(self):
        """All 64 cells of one brick occupy one 512-byte run."""
        lay = BrickLayout(8, 4)
        i, j, k = np.meshgrid(*([np.arange(4)] * 3), indexing="ij")
        addrs = np.sort(lay.address(i.ravel(), j.ravel(), k.ravel()))
        assert addrs[0] == 0 and addrs[-1] == 64 * 8 - 8
        assert np.all(np.diff(addrs) == 8)

    def test_rowmajor_pencils_contiguous(self):
        lay = RowMajorLayout(8)
        addrs = lay.address(np.zeros(8, int), np.zeros(8, int), np.arange(8))
        assert np.all(np.diff(addrs) == 8)

    def test_wrapping(self):
        lay = RowMajorLayout(8)
        assert lay.address_wrapped(
            np.array([-1]), np.array([0]), np.array([8])
        )[0] == lay.address(np.array([7]), np.array([0]), np.array([0]))[0]

    def test_brick_dim_must_divide(self):
        with pytest.raises(ValueError):
            BrickLayout(10, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RowMajorLayout(0)


class TestSweepTrace:
    def test_batch_census(self):
        lay = RowMajorLayout(8)
        batches = list(stencil_sweep_trace(lay, 4))
        # 8 tiles x (7 reads + 1 write)
        assert len(batches) == 8 * 8
        writes = [b for b, w in batches if w]
        assert sum(len(b) for b in writes) == 512

    def test_tile_must_divide(self):
        with pytest.raises(ValueError):
            list(stencil_sweep_trace(RowMajorLayout(8), 3))

    def test_writes_target_output_field(self):
        lay = RowMajorLayout(8)
        for addrs, is_write in stencil_sweep_trace(lay, 4):
            if is_write:
                assert np.all(addrs >= lay.total_bytes)
            else:
                assert np.all(addrs < lay.total_bytes)


class TestMeasurements:
    CACHE = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=8)

    def test_traffic_at_least_compulsory(self):
        m = measure_sweep(BrickLayout(16, 4), 4, self.CACHE)
        assert m.dram_bytes >= m.compulsory_bytes

    def test_brick_beats_tiled_rowmajor(self):
        """The paper's core layout claim, computed from first principles:
        a brick-ordered sweep over brick storage moves less DRAM data
        than the same tile-ordered sweep over a conventional array."""
        brick = measure_sweep(BrickLayout(16, 4), 4, self.CACHE)
        tiled = measure_sweep(RowMajorLayout(16), 4, self.CACHE)
        assert brick.dram_bytes < tiled.dram_bytes
        assert brick.ai_fraction > tiled.ai_fraction

    def test_big_cache_approaches_compulsory(self):
        big = CacheConfig(capacity_bytes=1 << 20, line_bytes=64, ways=16)
        m = measure_sweep(BrickLayout(16, 4), 4, big)
        assert m.traffic_ratio == pytest.approx(1.0, abs=0.15)

    def test_compulsory_formula(self):
        assert compulsory_traffic(16) == 3 * 16**3 * 8
        assert compulsory_traffic(16, write_allocate=False) == 2 * 16**3 * 8

    def test_achieved_ai_consistent(self):
        m = measure_sweep(BrickLayout(16, 4), 4, self.CACHE)
        assert m.achieved_ai == pytest.approx(
            8 * 16**3 / m.dram_bytes
        )
        assert m.ai_fraction == pytest.approx(m.achieved_ai / 0.5)


@settings(max_examples=15, deadline=None)
@given(n=st.sampled_from([4, 8]), b=st.sampled_from([2, 4]))
def test_brick_layout_bijection_property(n, b):
    lay = BrickLayout(n, b)
    i, j, k = np.meshgrid(*([np.arange(n)] * 3), indexing="ij")
    addrs = lay.address(i.ravel(), j.ravel(), k.ravel())
    assert len(np.unique(addrs)) == n**3


class TestTLB:
    """Section III's TLB claim, measured (see repro.memsim.tlb)."""

    from repro.memsim import BrickLayout as _BL  # noqa: F401 (clarity)

    def test_config_validation(self):
        from repro.memsim import TLBConfig

        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            TLBConfig(page_bytes=1000)

    def test_brick_needs_fewer_page_walks(self):
        from repro.memsim import (
            BrickLayout,
            RowMajorLayout,
            TLBConfig,
            measure_sweep_tlb,
        )

        tlb = TLBConfig(entries=8)
        brick = measure_sweep_tlb(BrickLayout(32, 4), 4, tlb)
        conv = measure_sweep_tlb(RowMajorLayout(32), 4, tlb)
        assert brick.page_walks < conv.page_walks / 4
        assert brick.walk_rate < conv.walk_rate

    def test_brick_tile_fits_one_page(self):
        from repro.memsim import BrickLayout, RowMajorLayout, pages_per_tile

        # a 4^3 brick is 512 contiguous bytes: one page
        assert pages_per_tile(BrickLayout(32, 4), 4) == 1.0
        # a conventional 4^3 tile touches one pencil per (i, j): the
        # 32^3 domain puts each tile across several pages
        assert pages_per_tile(RowMajorLayout(32), 4) >= 4.0

    def test_distinct_pages_counted(self):
        from repro.memsim import BrickLayout, TLBConfig, measure_sweep_tlb

        m = measure_sweep_tlb(BrickLayout(16, 4), 4, TLBConfig(entries=16))
        # two fields of 16^3 doubles = 64 KB = 16 pages... plus a page
        # boundary straddle at most
        assert 16 <= m.distinct_pages <= 17

    def test_huge_tlb_only_compulsory_walks(self):
        from repro.memsim import BrickLayout, TLBConfig, measure_sweep_tlb

        m = measure_sweep_tlb(BrickLayout(16, 4), 4, TLBConfig(entries=1024))
        assert m.page_walks == m.distinct_pages
