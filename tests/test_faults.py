"""Fault injection, detection, recovery, and degradation.

Acceptance contract (ISSUE 1): with injection disabled the resilient
path is bit-identical to the plain path; every injected fault is
detected; recovery lands on the same converged residual in a
deterministic number of extra V-cycles; an exhausted recovery budget
degrades to ``status='failed_faults'`` instead of raising; and the
recorder's fault/retry/rollback counts match the plan exactly.
"""

import math

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    STATUS_FAILED_FAULTS,
)
from repro.faults.pricing import checkpoint_seconds, resilience_overhead
from repro.faults.sweep import (
    default_config,
    fault_sweep,
    render_fault_sweep,
)
from repro.gmg import GMGSolver, SolverConfig
from repro.gmg.solver import SolveResult
from repro.instrument import Recorder
from repro.machines import MACHINES


def small_config(**overrides) -> SolverConfig:
    base = dict(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=6,
        bottom_smooths=20,
        rank_dims=(2, 1, 1),
    )
    base.update(overrides)
    return SolverConfig(**base)


@pytest.fixture(scope="module")
def reference():
    """Fault-free solve of the shared small config."""
    solver = GMGSolver(small_config())
    result = solver.solve()
    return result, solver.solution()


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor")

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            FaultSpec("drop", direction=(0, 0, 0))

    def test_rejects_zero_hits(self):
        with pytest.raises(ValueError, match="max_hits"):
            FaultSpec("drop", max_hits=0)

    def test_message_matching(self):
        spec = FaultSpec("drop", vcycle=2, level=1, src=0, rank=1,
                         direction=(1, 0, 0))
        assert spec.matches_message(2, 1, 0, 1, (1, 0, 0))
        assert not spec.matches_message(3, 1, 0, 1, (1, 0, 0))
        assert not spec.matches_message(2, 0, 0, 1, (1, 0, 0))
        assert not spec.matches_message(2, 1, 1, 1, (1, 0, 0))
        assert not spec.matches_message(2, 1, 0, 0, (1, 0, 0))
        assert not spec.matches_message(2, 1, 0, 1, (-1, 0, 0))

    def test_vcycle_from_matches_later_cycles(self):
        spec = FaultSpec("sdc", vcycle_from=3)
        assert not spec.matches_kernel(2, 0, 0)
        assert spec.matches_kernel(3, 0, 0)
        assert spec.matches_kernel(7, 0, 0)

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(7, num_faults=5, num_ranks=4)
        b = FaultPlan.random(7, num_faults=5, num_ranks=4)
        assert a == b
        c = FaultPlan.random(8, num_faults=5, num_ranks=4)
        assert a != c

    def test_total_planned_hits(self):
        plan = FaultPlan(specs=(FaultSpec("drop"), FaultSpec("corrupt", max_hits=2)))
        assert plan.total_planned_hits == 3
        persistent = plan.with_specs([FaultSpec("drop", max_hits=None)])
        assert persistent.total_planned_hits is None


class TestInjectorDeterminism:
    def test_exhaustion_and_hit_counting(self):
        plan = FaultPlan.single("drop", vcycle=1)
        rec = Recorder()
        inj = FaultInjector(plan, rec)
        inj.begin_vcycle(1)
        assert inj.message_action(0, 0, 1, 3, (1, 0, 0), 64) is not None
        assert inj.exhausted
        assert inj.message_action(0, 0, 1, 3, (1, 0, 0), 64) is None
        assert rec.fault_counts() == {"inject_drop": 1}

    def test_corrupt_action_is_seeded(self):
        plan = FaultPlan.single("corrupt", vcycle=0)
        a = FaultInjector(plan, seed=5).message_action(0, 0, 1, 0, (1, 0, 0), 256)
        b = FaultInjector(plan, seed=5).message_action(0, 0, 1, 0, (1, 0, 0), 256)
        assert (a.corrupt_byte, a.corrupt_bit) == (b.corrupt_byte, b.corrupt_bit)


class TestBitIdenticalWithoutInjection:
    def test_resilient_path_matches_seed_behavior(self, reference):
        ref_result, ref_solution = reference
        solver = GMGSolver(small_config(), resilience=ResilienceConfig())
        result = solver.solve()
        assert result.status == "converged"
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        assert result.executed_vcycles == result.num_vcycles
        assert result.rollbacks == 0


class TestMessageFaultRecovery:
    @pytest.mark.parametrize("kind", ["drop", "corrupt", "delay"])
    def test_retry_recovers_bitwise(self, kind, reference):
        ref_result, ref_solution = reference
        plan = FaultPlan.single(kind, vcycle=1, level=0)
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        # retry recovery costs no extra V-cycles and lands bitwise on
        # the reference solution
        assert result.num_vcycles == ref_result.num_vcycles
        assert result.executed_vcycles == ref_result.num_vcycles
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        counts = result.fault_counts
        assert counts[f"inject_{kind}"] == 1
        assert counts[f"detect_{kind}"] == 1
        assert counts["retry"] == 1
        if kind != "delay":  # a delayed message needs no retransmission
            assert counts["retransmit"] == 1

    def test_duplicate_discarded_and_drained(self, reference):
        ref_result, ref_solution = reference
        plan = FaultPlan.single("duplicate", vcycle=1, level=0)
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        counts = result.fault_counts
        assert counts["inject_duplicate"] == 1
        assert counts["detect_duplicate"] == 1
        assert "retry" not in counts
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        # solve() already drained: no undelivered messages may remain
        solver.comm.assert_drained()

    def test_drained_duplicate_attributed_to_final_exchange(self):
        """A duplicate that survives to the end-of-solve drain (its
        original was consumed by the solve's *final* exchange on that
        envelope, so no later receive discarded it) must be attributed
        to that exchange's level, inside an owning ``drain-stale`` span
        on the receiving rank's timeline — not recorded as ``level=-1``
        floating outside every V-cycle window, where commviz critical
        paths and the per-rank Chrome export orphan it.
        """
        from repro.obs.tracer import Tracer

        # max_vcycles=0: the initial residual check's level-0 exchange
        # is the solve's only (hence final) exchange
        plan = FaultPlan.single("duplicate", vcycle=0, level=0)
        tracer = Tracer()
        solver = GMGSolver(
            small_config(max_vcycles=0), fault_plan=plan, tracer=tracer
        )
        result = solver.solve()
        assert result.status == "max_vcycles"
        assert result.fault_counts["inject_duplicate"] == 1
        dups = result.recorder.faults_of("detect_duplicate")
        assert len(dups) == 1
        assert dups[0].level == 0
        assert dups[0].rank >= 0
        drains = [
            s
            for rank_tracer in tracer.children.values()
            for s in rank_tracer.spans
            if s.name == "drain-stale"
        ]
        assert len(drains) == 1
        assert drains[0].attrs["l"] == 0
        solver.comm.assert_drained()

    def test_counts_match_plan_exactly(self, reference):
        plan = FaultPlan(
            specs=(
                FaultSpec("drop", vcycle=1, level=0),
                FaultSpec("corrupt", vcycle=2, level=0),
                FaultSpec("delay", vcycle=3, level=1),
            )
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        counts = result.fault_counts
        assert counts["inject_drop"] == 1
        assert counts["inject_corrupt"] == 1
        assert counts["inject_delay"] == 1
        assert result.recorder.injected_faults == plan.total_planned_hits == 3
        assert result.recorder.detected_faults == 3
        assert result.recorder.retries == 3


class TestKernelSdcRecovery:
    def test_nan_rollback_recovers_to_same_residual(self, reference):
        ref_result, ref_solution = reference
        plan = FaultPlan.single("sdc", vcycle=2, level=0, rank=0)
        solver = GMGSolver(
            small_config(),
            resilience=ResilienceConfig(checkpoint_interval=2),
            fault_plan=plan,
        )
        result = solver.solve()
        assert result.status == "converged"
        assert result.final_residual == ref_result.final_residual
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        counts = result.fault_counts
        assert counts["inject_sdc"] == 1
        assert counts["detect_sdc"] == 1
        assert counts["rollback"] == 1
        # corrupted cycle 2 rolled back to the checkpoint of cycle 2-ε:
        # checkpoints land every 2 clean cycles, so the redo costs a
        # deterministic 2 extra cycles (the poisoned one + the replay).
        assert result.executed_vcycles - result.num_vcycles == 2

    def test_inf_poison_on_coarse_level(self, reference):
        _, ref_solution = reference
        plan = FaultPlan(
            specs=(
                FaultSpec("sdc", vcycle=3, level=1, rank=1,
                          sdc_value=float("inf")),
            )
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        assert result.fault_counts["rollback"] == 1
        np.testing.assert_array_equal(solver.solution(), ref_solution)

    def test_single_rank_sdc_detection(self):
        """Single-rank runs detect SDC too (no comm layer involved)."""
        plan = FaultPlan.single("sdc", vcycle=1, level=0, rank=0)
        solver = GMGSolver(small_config(rank_dims=(1, 1, 1)), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        assert result.fault_counts["detect_sdc"] == 1
        assert result.fault_counts["rollback"] == 1


class TestGracefulDegradation:
    def test_persistent_drop_exhausts_budget(self):
        plan = FaultPlan(
            specs=(FaultSpec("drop", vcycle_from=1, level=0, max_hits=None),)
        )
        res_cfg = ResilienceConfig(recovery_budget=2)
        solver = GMGSolver(small_config(), resilience=res_cfg, fault_plan=plan)
        result = solver.solve()  # must not raise
        assert result.status == STATUS_FAILED_FAULTS
        assert not result.converged
        assert result.rollbacks == 2
        assert result.fault_counts["give_up"] == 1

    def test_persistent_sdc_exhausts_budget(self):
        plan = FaultPlan(
            specs=(FaultSpec("sdc", vcycle_from=1, level=0, rank=0,
                             max_hits=None),)
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == STATUS_FAILED_FAULTS
        assert result.rollbacks == ResilienceConfig().recovery_budget

    def test_fault_at_initial_residual_fails_structuredly(self):
        plan = FaultPlan(
            specs=(FaultSpec("drop", vcycle=0, level=0, max_hits=None),)
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == STATUS_FAILED_FAULTS
        assert result.residual_history == []
        assert math.isnan(result.final_residual)


class TestSolveResultEdgeCases:
    def make(self, history, num_vcycles, **kw):
        return SolveResult(
            converged=bool(history and history[-1] <= 1e-10),
            num_vcycles=num_vcycles,
            residual_history=history,
            recorder=Recorder(),
            **kw,
        )

    def test_empty_history(self):
        r = self.make([], 0, status="failed_faults")
        assert math.isnan(r.final_residual)
        assert r.convergence_factor == 1.0

    def test_single_entry_history(self):
        """Solve that stopped on the initial residual: no reduction ran."""
        r = self.make([5e-11], 0)
        assert r.converged
        assert r.final_residual == 5e-11
        assert r.convergence_factor == 1.0

    def test_status_defaults(self):
        assert self.make([1e-12], 0).status == "converged"
        assert self.make([1.0, 0.5], 1).status == "max_vcycles"
        assert self.make([], 0, status="diverged").status == "diverged"

    def test_executed_defaults_to_clean(self):
        r = self.make([1.0, 1e-12], 1)
        assert r.executed_vcycles == 1

    def test_non_finite_history_clamps_factor_to_nan(self):
        """A diverged history that overflowed must not report an ``inf``
        (or bogus complex/NaN-power) convergence factor."""
        for last in (float("inf"), float("nan")):
            r = self.make([1e-3, 1e100, last], 2, status="diverged")
            assert r.status == "diverged"
            assert math.isnan(r.convergence_factor)
        # a non-finite *initial* residual is just as meaningless
        r = self.make([float("inf"), 1.0], 1, status="diverged")
        assert math.isnan(r.convergence_factor)

    def test_finite_divergence_still_reports_growth(self):
        """The clamp must not touch finite diverging histories: a >1
        factor is the honest report there."""
        r = self.make([1.0, 4.0, 16.0], 2, status="diverged")
        assert r.convergence_factor == pytest.approx(4.0)

    def test_diverged_solve_has_finite_or_nan_factor(self):
        """End-to-end diverged-status solve: an unreachable tolerance
        stalls the residual at machine precision, the resilient driver
        flags stagnation (status ``diverged``), and
        ``convergence_factor`` must never come back as ``inf``/complex —
        finite or ``nan`` only."""
        config = small_config(max_vcycles=60, tol=1e-300)
        solver = GMGSolver(config, resilience=ResilienceConfig())
        result = solver.solve()
        assert result.status == "diverged"
        cf = result.convergence_factor
        assert isinstance(cf, float)
        assert math.isnan(cf) or math.isfinite(cf)


class TestOverheadPricing:
    def test_checkpoint_seconds_scales_with_bytes(self):
        m = MACHINES["Perlmutter"]
        assert checkpoint_seconds(m, 0) == 0.0
        assert checkpoint_seconds(m, 2 * 10**9) > checkpoint_seconds(m, 10**9) > 0

    def test_overhead_breakdown_prices_recorded_events(self):
        plan = FaultPlan.single("drop", vcycle=1, level=0)
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        breakdown = resilience_overhead(
            MACHINES["Frontier"],
            result.recorder,
            recomputed_vcycles=result.executed_vcycles - result.num_vcycles,
            vcycle_seconds=1e-3,
        )
        assert breakdown.retries_s > 0
        assert breakdown.checkpoints_s > 0
        assert breakdown.total_s >= breakdown.retries_s + breakdown.checkpoints_s


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return fault_sweep(seed=2024, machine_name="Perlmutter")

    def test_all_scenarios_have_structured_status(self, rows):
        assert all(
            r.status in ("converged", "max_vcycles", "diverged", "failed_faults")
            for r in rows
        )

    def test_no_fault_scenario_is_bit_identical(self, rows):
        base = next(r for r in rows if r.scenario == "no-faults")
        assert base.bit_identical
        assert base.injected == base.detected == 0
        assert base.overhead_ms < 0.1  # checkpoints only

    def test_recoverable_scenarios_recover_bitwise(self, rows):
        for r in rows:
            if r.scenario == "drop-storm":
                continue
            assert r.status == "converged", r.scenario
            assert r.bit_identical, r.scenario
            assert r.detected >= 1 or r.scenario == "no-faults"

    def test_storm_degrades(self, rows):
        storm = next(r for r in rows if r.scenario == "drop-storm")
        assert storm.status == "failed_faults"
        assert storm.rollbacks > 0
        assert not storm.bit_identical

    def test_sweep_is_deterministic(self, rows):
        assert fault_sweep(seed=2024, machine_name="Perlmutter") == rows

    def test_render_mentions_every_scenario(self, rows):
        text = render_fault_sweep(rows, "Perlmutter")
        for r in rows:
            assert r.scenario in text

    def test_default_config_is_distributed(self):
        assert default_config().num_ranks > 1
