"""End-to-end integration: the whole stack working together."""

import numpy as np
import pytest

from repro.gmg import (
    GMGSolver,
    SolverConfig,
    continuum_solution,
    discrete_solution,
)
from repro.instrument import Recorder


class TestEndToEnd:
    def test_paper_configuration_scaled_down(self):
        """The paper's setup (12 smooths, 100 bottom smooths, CA,
        surface-major, multi-rank) at laptop scale, converging to the
        paper's tolerance of 1e-10 and hitting the known solution."""
        cfg = SolverConfig(
            global_cells=32,
            num_levels=3,
            brick_dim=4,
            max_smooths=12,
            bottom_smooths=100,
            rank_dims=(2, 2, 2),
            tol=1e-10,
        )
        solver = GMGSolver(cfg)
        result = solver.solve()
        assert result.converged
        exact = discrete_solution((32, 32, 32), 1 / 32)
        assert np.abs(solver.solution() - exact).max() < 1e-12

    def test_discretization_error_is_second_order(self):
        """Solve at two resolutions; error vs the continuum solution
        must drop ~4x per refinement (2nd-order FV discretisation)."""
        errs = []
        for n in (16, 32):
            cfg = SolverConfig(global_cells=n, num_levels=3, brick_dim=4,
                               max_smooths=8, bottom_smooths=50)
            s = GMGSolver(cfg)
            assert s.solve().converged
            u = continuum_solution((n, n, n), 1.0 / n)
            errs.append(np.abs(s.solution() - u).max())
        assert errs[0] / errs[1] == pytest.approx(4.0, rel=0.15)

    def test_convergence_rate_independent_of_resolution(self):
        """Multigrid's hallmark: iteration count barely grows with N."""
        cycles = []
        for n in (16, 32):
            cfg = SolverConfig(global_cells=n, num_levels=3, brick_dim=4,
                               max_smooths=8, bottom_smooths=50)
            cycles.append(GMGSolver(cfg).solve().num_vcycles)
        assert abs(cycles[1] - cycles[0]) <= 2

    def test_recorder_totals_are_consistent(self):
        cfg = SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                           max_smooths=4, bottom_smooths=10)
        s = GMGSolver(cfg)
        res = s.solve()
        rec: Recorder = res.recorder
        # every exchange phase at level 0 carries 26 messages
        msgs = rec.message_counts_by_level()[0]
        assert msgs == 26 * rec.exchange_counts()[0]
        # applyOp points = invocations x level-0 size at level 0
        counts = rec.kernel_counts()
        points = rec.kernel_points()
        assert points[(0, "applyOp")] == counts[(0, "applyOp")] * 16**3

    def test_instrument_clear(self):
        rec = Recorder()
        rec.kernel(0, "applyOp", 10)
        rec.message(0, 100, "face")
        rec.exchange(0)
        rec.reduction()
        rec.clear()
        assert rec.kernel_counts() == {}
        assert rec.message_bytes_by_level() == {}
        assert rec.exchange_counts() == {}
        assert rec.reductions == 0

    def test_total_stencil_points_filter(self):
        rec = Recorder()
        rec.kernel(0, "applyOp", 10)
        rec.kernel(0, "smooth", 20)
        assert rec.total_stencil_points() == 30
        assert rec.total_stencil_points(ops=("applyOp",)) == 10
