"""Traced solves end-to-end: aggregation, coverage, faults, the report."""

import json
import math

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.gmg import GMGSolver, SolverConfig
from repro.obs import (
    Tracer,
    aggregate_by_level_op,
    measured_vs_model_rows,
    profile_solve,
    render_measured_vs_model,
    span_coverage,
)
from repro.obs.aggregate import STRUCTURE_SPANS, op_spans


def _config(**overrides) -> SolverConfig:
    base = dict(global_cells=16, num_levels=2, brick_dim=4,
                max_smooths=6, bottom_smooths=20)
    base.update(overrides)
    return SolverConfig(**base)


@pytest.fixture(scope="module")
def profiled():
    """One traced 2-level solve shared by the assertions below."""
    return profile_solve(_config(), machine_name="Perlmutter")


class TestTracedSolve:
    def test_solve_root_covers_everything(self, profiled):
        tracer = profiled.tracer
        (root,) = tracer.roots()
        assert root.name == "solve"
        assert tracer.open_depth == 0
        for s in tracer.spans:
            if s is not root:
                assert root.start <= s.start and s.end <= root.end

    def test_span_coverage_meets_acceptance_bar(self, profiled):
        assert profiled.coverage == span_coverage(profiled.tracer)
        assert profiled.coverage >= 0.95

    def test_both_levels_visited(self, profiled):
        levels = {s.attrs["l"] for s in op_spans(profiled.tracer)}
        assert levels == {0, 1}

    def test_op_totals_fit_inside_the_solve(self, profiled):
        (root,) = profiled.tracer.roots()
        per_level = {}
        for s in op_spans(profiled.tracer):
            per_level.setdefault(s.attrs["l"], 0.0)
            per_level[s.attrs["l"]] += s.duration
        # op spans never nest within one another, so their sum is a
        # lower bound on the wall-clock they sit inside
        assert sum(per_level.values()) <= root.duration * 1.001


class TestAggregation:
    def test_structure_spans_excluded(self, profiled):
        ops = {op for (_, op) in aggregate_by_level_op(profiled.tracer)}
        assert ops and not (ops & STRUCTURE_SPANS)

    def test_stats_are_consistent(self, profiled):
        for stat in aggregate_by_level_op(profiled.tracer).values():
            assert 0.0 <= stat.min <= stat.avg <= stat.max
            assert stat.count >= 1
            assert math.isfinite(stat.stdev)


class TestMeasuredVsModel:
    def test_rows_cover_both_levels_with_model_column(self, profiled):
        rows = profiled.rows
        assert {r["level"] for r in rows} == {0, 1}
        smooth_rows = [r for r in rows if "smooth" in r["op"]]
        assert smooth_rows
        # the model prices the smoothing pipeline on every level
        assert all(r["model_s"] is not None and r["model_s"] > 0
                   for r in smooth_rows)

    def test_render_matches_artifact_row_format(self, profiled):
        text = render_measured_vs_model(profiled.rows, "Perlmutter")
        assert "(model: Perlmutter)" in text
        assert "sigma:" in text and "| model " in text
        assert "level 0 " in text and "level 1 " in text
        text.encode("ascii")

    def test_model_column_optional(self, profiled):
        rows = measured_vs_model_rows(
            profiled.tracer, profiled.config, None,
            profiled.result.num_vcycles)
        assert all(r["model_s"] is None for r in rows)
        assert "| model" not in render_measured_vs_model(rows)


class TestProfileReport:
    def test_render_sections(self, profiled):
        text = profiled.render()
        assert "profiled solve: 16^3" in text
        assert "coverage" in text
        assert "metrics snapshot:" in text
        assert "kernels.total" in text

    def test_reductions_bridged_from_recorder(self, profiled):
        counters = profiled.metrics["counters"]
        assert counters["reductions.total"] == \
            profiled.result.recorder.reductions
        assert counters["reductions.total"] > 0

    def test_kernel_counter_matches_recorder(self, profiled):
        counters = profiled.metrics["counters"]
        recorder = profiled.result.recorder
        assert counters["kernels.total"] == len(recorder.kernels)
        assert counters["exchanges.total"] == \
            sum(recorder.exchange_counts().values())

    def test_json_form_serialises(self, profiled):
        obj = json.loads(json.dumps(profiled.to_json()))
        assert obj["coverage"] == pytest.approx(profiled.coverage)
        assert obj["machine"] == "Perlmutter"
        row = obj["rows"][0]
        assert {"level", "op", "min", "avg", "max", "sigma",
                "count", "measured_total_s", "model_s"} <= set(row)

    def test_trace_file_written_and_valid(self, tmp_path):
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "trace.json"
        report = profile_solve(_config(), machine_name=None,
                               trace_path=path)
        counts = validate_chrome_trace_file(path)
        assert counts["spans"] == len(report.tracer.spans)
        assert report.machine_name is None

    def test_nonperiodic_skips_model(self):
        report = profile_solve(_config(boundary="dirichlet"),
                               machine_name="Perlmutter")
        assert report.machine_name is None
        assert all(r["model_s"] is None for r in report.rows)


class TestFaultInstants:
    @pytest.fixture(scope="class")
    def faulted(self):
        plan = FaultPlan([FaultSpec("drop", vcycle=1, level=0, max_hits=1)])
        config = _config(rank_dims=(2, 1, 1))
        tracer = Tracer()
        solver = GMGSolver(config, fault_plan=plan, tracer=tracer)
        result = solver.solve()
        return tracer, result

    def test_injection_and_detection_traced(self, faulted):
        tracer, result = faulted
        names = [i.name for i in tracer.instants]
        assert "fault:inject_drop" in names
        assert any(n.startswith("fault:detect") for n in names)
        assert result.status == "converged"

    def test_message_faults_land_inside_an_exchange_span(self, faulted):
        tracer, _ = faulted
        by_index = {s.index: s for s in tracer.spans}
        message_faults = [
            i for i in tracer.instants
            if i.name in ("fault:inject_drop", "fault:detect_drop")
        ]
        assert message_faults
        for instant in message_faults:
            owner = by_index[instant.parent]
            assert owner.name == "exchange"
            assert owner.contains(instant.timestamp)
            assert owner.attrs["l"] == 0

    def test_every_instant_has_a_live_owner(self, faulted):
        tracer, _ = faulted
        by_index = {s.index: s for s in tracer.spans}
        for instant in tracer.instants:
            assert instant.parent in by_index
            assert by_index[instant.parent].contains(instant.timestamp)

    def test_fault_counters_in_metrics(self, faulted):
        from repro.obs import solve_metrics

        tracer, result = faulted
        snapshot = solve_metrics(result.recorder, tracer).snapshot()
        assert snapshot["counters"]["faults.injected"] >= 1
        assert snapshot["counters"]["faults.detected"] >= 1
        assert snapshot["gauges"]["trace.instants"] == len(tracer.instants)
        assert snapshot["gauges"]["trace.spans"] == len(tracer.spans)
