"""V-cycle driver: schedule, CA equivalence, convergence behaviour."""

import numpy as np
import pytest

from repro.gmg import GMGSolver, SolverConfig


def solve(global_cells=16, num_levels=2, brick_dim=4, **kw):
    cfg = SolverConfig(
        global_cells=global_cells,
        num_levels=num_levels,
        brick_dim=brick_dim,
        max_smooths=kw.pop("max_smooths", 6),
        bottom_smooths=kw.pop("bottom_smooths", 20),
        **kw,
    )
    return GMGSolver(cfg)


class TestConvergenceBehaviour:
    def test_residual_decreases_monotonically(self):
        s = solve()
        history = s.vcycle.solve(tol=1e-10, max_vcycles=30)
        assert all(b < a for a, b in zip(history, history[1:]))

    def test_reaches_paper_tolerance(self):
        s = solve()
        history = s.vcycle.solve(tol=1e-10, max_vcycles=50)
        assert history[-1] <= 1e-10

    def test_three_level_hierarchy_converges_faster_per_cycle(self):
        """More levels => cheaper coarse solve and at least as good a
        convergence factor on this problem."""
        two = solve(global_cells=32, num_levels=2).solve()
        three = solve(global_cells=32, num_levels=3).solve()
        assert three.converged and two.converged

    def test_max_vcycles_cap(self):
        s = solve()
        history = s.vcycle.solve(tol=0.0, max_vcycles=3)
        assert len(history) == 4  # initial + 3 cycles

    def test_initial_residual_is_rhs_norm(self):
        s = solve()
        # x = 0 -> r = b, so the first residual is max|b|
        expected = max(
            lv[0].b.max_abs_interior() for lv in s.rank_levels
        )
        assert s.vcycle.max_norm_residual() == pytest.approx(expected)


class TestCommunicationAvoiding:
    def test_ca_and_non_ca_give_identical_results(self):
        """Redundant ghost-zone computation must not change interior
        values: CA on/off solves agree bit-for-bit."""
        a = solve(communication_avoiding=True)
        b = solve(communication_avoiding=False)
        ra = a.solve()
        rb = b.solve()
        assert ra.residual_history == rb.residual_history
        np.testing.assert_array_equal(a.solution(), b.solution())

    def test_ca_reduces_exchange_count(self):
        a = solve(communication_avoiding=True)
        b = solve(communication_avoiding=False)
        a.solve()
        b.solve()
        ex_a = sum(a.recorder.exchange_counts().values())
        ex_b = sum(b.recorder.exchange_counts().values())
        assert ex_a < ex_b

    def test_exchanges_per_visit_formula(self):
        s = solve(max_smooths=6)  # brick 4 => ghost depth 4 => ceil(6/4)=2
        assert s.vcycle.exchanges_per_visit(0) == 2
        s2 = solve(max_smooths=4)
        assert s2.vcycle.exchanges_per_visit(0) == 1
        s3 = solve(max_smooths=6, communication_avoiding=False)
        assert s3.vcycle.exchanges_per_visit(0) == 6


class TestScheduleValidation:
    def test_vcycle_constructor_validation(self):
        from repro.gmg.vcycle import VCycle

        s = solve()
        with pytest.raises(ValueError, match="exchanger"):
            VCycle(s.rank_levels, [], max_smooths=2, bottom_smooths=2)
        with pytest.raises(ValueError, match="positive"):
            VCycle(s.rank_levels, s.exchangers, max_smooths=0)
        with pytest.raises(ValueError, match="at least one"):
            VCycle([], [])

    def test_mismatched_rank_hierarchies_rejected(self):
        from repro.gmg.vcycle import VCycle

        a, b = solve(), solve(num_levels=1)
        with pytest.raises(ValueError, match="same number of levels"):
            VCycle(
                [a.rank_levels[0], b.rank_levels[0]],
                a.exchangers,
            )
