"""Bottom solvers, cycle types, and mixed precision."""

import numpy as np
import pytest

from repro.gmg import (
    BOTTOM_SOLVERS,
    GMGSolver,
    MixedPrecisionSolver,
    SolverConfig,
    discrete_solution,
    make_bottom_solver,
)

BASE = dict(global_cells=32, num_levels=3, brick_dim=4,
            max_smooths=8, bottom_smooths=40)
EXACT = discrete_solution((32, 32, 32), 1 / 32)


class TestBottomSolvers:
    def test_registry(self):
        assert set(BOTTOM_SOLVERS) == {"relaxation", "cg", "fft"}
        with pytest.raises(ValueError, match="unknown bottom solver"):
            make_bottom_solver("lu")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            make_bottom_solver("relaxation", iterations=0)
        with pytest.raises(ValueError):
            make_bottom_solver("cg", max_iterations=0)

    @pytest.mark.parametrize("name", ["cg", "fft"])
    def test_solver_converges_with_each_bottom(self, name):
        solver = GMGSolver(SolverConfig(**BASE, bottom_solver=name))
        result = solver.solve()
        assert result.converged
        assert np.abs(solver.solution() - EXACT).max() < 1e-12

    def test_cg_distributed_matches_serial(self):
        serial = GMGSolver(SolverConfig(**BASE, bottom_solver="cg"))
        serial.solve()
        dist = GMGSolver(SolverConfig(**BASE, bottom_solver="cg",
                                      rank_dims=(2, 1, 1)))
        dist.solve()
        np.testing.assert_allclose(
            serial.solution(), dist.solution(), rtol=0, atol=1e-13
        )

    def test_fft_bottom_is_exact(self):
        """A direct bottom solve should not degrade convergence vs many
        relaxation sweeps."""
        relaxed = GMGSolver(SolverConfig(**BASE)).solve()
        direct = GMGSolver(SolverConfig(**BASE, bottom_solver="fft")).solve()
        assert direct.num_vcycles <= relaxed.num_vcycles + 1

    def test_cg_records_reductions(self):
        solver = GMGSolver(SolverConfig(**BASE, bottom_solver="cg",
                                        max_vcycles=1, tol=0.0))
        result = solver.solve()
        # CG adds dot-product allreduces on top of convergence checks
        assert result.recorder.reductions > len(result.residual_history)

    def test_fft_solves_coarse_system_exactly(self):
        """One FFT bottom call must produce A x = b on the coarse grid."""
        from tests.conftest import reference_apply_op

        solver = GMGSolver(SolverConfig(**BASE, bottom_solver="fft"))
        lev = solver.rank_levels[0][-1]
        rng = np.random.default_rng(3)
        b = rng.random(lev.shape_cells)
        b -= b.mean()
        lev.b.set_interior(b)
        solver.vcycle.bottom_solver.solve(solver.vcycle, 2)
        c = lev.constants
        Ax = reference_apply_op(lev.x.to_ijk(), c.alpha, c.beta)
        np.testing.assert_allclose(Ax, b, atol=1e-9)


class TestCycleTypes:
    @pytest.mark.parametrize("cycle", ["W", "F"])
    def test_cycles_converge(self, cycle):
        solver = GMGSolver(SolverConfig(**BASE, cycle=cycle))
        result = solver.solve()
        assert result.converged
        assert np.abs(solver.solution() - EXACT).max() < 1e-12

    def test_w_cycle_visits_coarse_levels_more(self):
        v = GMGSolver(SolverConfig(**BASE, max_vcycles=1, tol=0.0))
        w = GMGSolver(SolverConfig(**BASE, cycle="W", max_vcycles=1, tol=0.0))
        v.solve()
        w.solve()
        cv = v.recorder.kernel_counts()
        cw = w.recorder.kernel_counts()
        # level-1 work doubles in a 3-level W-cycle; level-0 unchanged
        assert cw[(1, "applyOp")] == 2 * cv[(1, "applyOp")]
        assert cw[(0, "applyOp")] == cv[(0, "applyOp")]

    def test_w_cycle_convergence_factor_at_least_as_good(self):
        v = GMGSolver(SolverConfig(**BASE)).solve()
        w = GMGSolver(SolverConfig(**BASE, cycle="W")).solve()
        assert w.convergence_factor <= v.convergence_factor * 1.05

    def test_invalid_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            SolverConfig(**BASE, cycle="X")


class TestPrecision:
    def test_fp32_fields(self):
        solver = GMGSolver(SolverConfig(**BASE, precision="fp32"))
        assert solver.rank_levels[0][0].x.dtype == np.float32

    def test_fp32_stalls_above_fp64_tolerance(self):
        solver = GMGSolver(SolverConfig(**BASE, precision="fp32",
                                        max_vcycles=15))
        result = solver.solve()
        assert not result.converged  # cannot reach 1e-10 in fp32
        assert result.final_residual < 1e-3  # but gets to the fp32 floor

    def test_fp32_message_bytes_halve(self):
        r64 = GMGSolver(SolverConfig(**BASE, rank_dims=(2, 1, 1),
                                     max_vcycles=1, tol=0.0))
        r32 = GMGSolver(SolverConfig(**BASE, rank_dims=(2, 1, 1),
                                     max_vcycles=1, tol=0.0,
                                     precision="fp32"))
        r64.solve()
        r32.solve()
        b64 = r64.recorder.message_bytes_by_level()
        b32 = r32.recorder.message_bytes_by_level()
        for lev in b64:
            assert b32[lev] * 2 == b64[lev]

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            SolverConfig(**BASE, precision="fp16")


class TestMixedPrecision:
    @pytest.fixture(scope="class")
    def result_and_solver(self):
        solver = MixedPrecisionSolver(SolverConfig(**BASE), inner_vcycles=2)
        return solver.solve(), solver

    def test_reaches_fp64_tolerance(self, result_and_solver):
        result, _ = result_and_solver
        assert result.converged
        assert result.final_residual <= 1e-10

    def test_solution_accuracy(self, result_and_solver):
        _, solver = result_and_solver
        assert np.abs(solver.solution() - EXACT).max() < 1e-11

    def test_outer_history_decreases(self, result_and_solver):
        result, _ = result_and_solver
        h = result.residual_history
        assert all(b < a for a, b in zip(h, h[1:]))

    def test_inner_cycle_accounting(self, result_and_solver):
        result, _ = result_and_solver
        assert result.inner_vcycles_total == 2 * result.outer_iterations

    def test_invalid_inner_vcycles(self):
        with pytest.raises(ValueError):
            MixedPrecisionSolver(SolverConfig(**BASE), inner_vcycles=0)
