"""Local Fourier analysis: theory vs the measured solver."""

import numpy as np
import pytest

from repro.gmg import GMGSolver, SolverConfig
from repro.gmg.mode_analysis import (
    is_high_frequency,
    jacobi_symbol,
    operator_symbol,
    optimal_jacobi_weight,
    predicted_residual_reduction,
    predicted_vcycle_factor,
    smoothing_factor,
)


class TestSymbols:
    def test_zero_mode_is_fixed_point(self):
        assert jacobi_symbol((0.0, 0.0, 0.0)) == pytest.approx(1.0)

    def test_highest_mode_damped(self):
        s = jacobi_symbol((np.pi, np.pi, np.pi), omega=0.5)
        assert s == pytest.approx(0.0)  # omega=1/2 annihilates it

    def test_operator_symbol_matches_eigenvalue(self):
        from repro.gmg.problem import discrete_operator_eigenvalue

        h = 1 / 32
        theta = 2 * np.pi * h  # the model problem's mode
        assert operator_symbol((theta, theta, theta), h) == pytest.approx(
            discrete_operator_eigenvalue(h)
        )

    def test_symbol_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            theta = tuple(rng.uniform(-np.pi, np.pi, 3))
            assert -1.0 <= jacobi_symbol(theta, 0.5) <= 1.0


class TestSmoothingFactor:
    def test_half_weight_value(self):
        """For omega = 1/2 the HF supremum is at c -> 2/3:
        mu = 1 - (1/2)(1 - 2/3) = 5/6."""
        assert smoothing_factor(0.5, samples=64) == pytest.approx(5 / 6, abs=0.01)

    def test_optimal_weight_beats_half(self):
        omega_star = optimal_jacobi_weight()
        assert omega_star == pytest.approx(6 / 7)
        assert smoothing_factor(omega_star) < smoothing_factor(0.5)

    def test_optimal_weight_value(self):
        """mu(omega*) = 5/7 for the 3-D 7-point operator."""
        assert smoothing_factor(optimal_jacobi_weight(), samples=64) == (
            pytest.approx(5 / 7, abs=0.01)
        )

    def test_high_frequency_classification(self):
        thetas = np.array([[0.1, 0.1, 0.1], [np.pi, 0.0, 0.0]])
        hf = is_high_frequency(thetas)
        assert not hf[0] and hf[1]

    def test_reduction_validation(self):
        with pytest.raises(ValueError):
            predicted_residual_reduction(0)


class TestPredictionsVsMeasurement:
    def test_vcycle_factor_matches_solver(self):
        """Measured convergence factor within 2x of the LFA envelope."""
        cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                           max_smooths=8, bottom_smooths=40)
        measured = GMGSolver(cfg).solve().convergence_factor
        predicted = predicted_vcycle_factor(nu_total=16)
        assert predicted / 2 <= measured <= predicted * 2

    def test_more_smooths_converge_faster_as_predicted(self):
        factors = {}
        for smooths in (4, 8):
            cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                               max_smooths=smooths, bottom_smooths=40)
            factors[smooths] = GMGSolver(cfg).solve().convergence_factor
        assert factors[8] < factors[4]
        # prediction agrees on the ordering and rough ratio
        p4 = predicted_vcycle_factor(8)
        p8 = predicted_vcycle_factor(16)
        assert p8 < p4
        measured_ratio = factors[8] / factors[4]
        predicted_ratio = p8 / p4
        assert measured_ratio == pytest.approx(predicted_ratio, rel=1.0)

    def test_tuned_omega_beats_paper_omega_in_practice(self):
        """The LFA-optimal Jacobi weight should speed up the solver."""
        base = dict(global_cells=32, num_levels=3, brick_dim=4,
                    max_smooths=4, bottom_smooths=40)
        paper = GMGSolver(SolverConfig(**base)).solve()
        tuned = GMGSolver(SolverConfig(
            **base,
            smoother_options=(("omega", optimal_jacobi_weight()),),
        )).solve()
        assert tuned.convergence_factor < paper.convergence_factor
        assert tuned.num_vcycles <= paper.num_vcycles
