"""Domain boundary conditions: mirror ghosts, Dirichlet/Neumann solves."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray
from repro.comm import CartTopology
from repro.gmg import GMGSolver, SolverConfig
from repro.gmg.boundary import BoundaryCondition, BoundaryFill
from repro.gmg.problem import (
    dirichlet_operator_eigenvalue,
    discrete_solution_dirichlet,
    rhs_field_dirichlet,
)

BASE = dict(global_cells=32, num_levels=3, brick_dim=4,
            max_smooths=8, bottom_smooths=40)


class TestTopologyBoundary:
    def test_non_periodic_neighbors_are_none(self):
        topo = CartTopology((2, 2, 2), periodic=False)
        assert topo.neighbor(0, (-1, 0, 0)) is None
        assert topo.neighbor(0, (1, 0, 0)) is not None

    def test_boundary_sides(self):
        topo = CartTopology((2, 1, 1), periodic=False)
        assert topo.boundary_sides(0) == ((True, False), (True, True), (True, True))
        assert topo.boundary_sides(1) == ((False, True), (True, True), (True, True))

    def test_periodic_has_no_boundary(self):
        topo = CartTopology((2, 2, 2))
        assert topo.boundary_sides(0) == ((False, False),) * 3
        assert all(v is not None for v in topo.neighbors(0).values())

    def test_remote_fraction_skips_boundary_links(self):
        topo = CartTopology((2, 1, 1), ranks_per_node=1, periodic=False)
        # corner rank: many directions leave the domain
        assert topo.remote_neighbor_fraction(0) < 1.0


class TestBoundaryFill:
    def _field(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        dense = rng.random((8, 8, 8))
        f = BrickedArray.from_ijk(grid, dense)
        return grid, dense, f

    def test_dirichlet_face_mirror(self, rng):
        grid, dense, f = self._field(rng)
        fill = BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.DIRICHLET)
        fill.apply(f)
        low_ghost = f.data[grid.slot_of((-1, 0, 0))]
        # ghost cell at depth d mirrors interior depth d with sign -1
        mirror = dense[3::-1, 0:4, 0:4]
        np.testing.assert_array_equal(low_ghost, -mirror)

    def test_neumann_face_mirror(self, rng):
        grid, dense, f = self._field(rng)
        fill = BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.NEUMANN)
        fill.apply(f)
        hi_ghost = f.data[grid.slot_of((2, 0, 0))]
        mirror = dense[7:3:-1, 0:4, 0:4]
        np.testing.assert_array_equal(hi_ghost, mirror)

    def test_corner_sign_composition(self, rng):
        grid, dense, f = self._field(rng)
        fill = BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.DIRICHLET)
        fill.apply(f)
        # edge ghost outside in two axes: sign (+1); corner: (-1)^3
        edge = f.data[grid.slot_of((-1, -1, 0))]
        mirror2 = dense[3::-1, 3::-1, 0:4]
        np.testing.assert_array_equal(edge, mirror2)
        corner = f.data[grid.slot_of((-1, -1, -1))]
        mirror3 = dense[3::-1, 3::-1, 3::-1]
        np.testing.assert_array_equal(corner, -mirror3)

    def test_all_boundary_fill_covers_whole_shell(self, rng):
        grid, _, f = self._field(rng)
        fill = BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.DIRICHLET)
        assert fill.num_ghost_bricks == len(grid.ghost_slots)

    def test_partial_boundary_owns_partial_shell(self, rng):
        grid, _, _ = self._field(rng)
        fill = BoundaryFill(
            grid, ((True, False), (False, False), (False, False)),
            BoundaryCondition.DIRICHLET,
        )
        assert 0 < fill.num_ghost_bricks < len(grid.ghost_slots)

    def test_periodic_rejected(self, rng):
        grid, _, _ = self._field(rng)
        with pytest.raises(ValueError, match="periodic"):
            BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.PERIODIC)

    def test_incompatible_field_rejected(self, rng):
        grid, _, _ = self._field(rng)
        fill = BoundaryFill(grid, ((True, True),) * 3, BoundaryCondition.DIRICHLET)
        other = BrickedArray.zeros(BrickGrid((2, 2, 2), 8))
        with pytest.raises(ValueError, match="incompatible"):
            fill.apply(other)


class TestDirichletProblem:
    def test_rhs_vanishes_at_walls_in_the_limit(self):
        b = rhs_field_dirichlet((32, 32, 32), 1 / 32)
        # first cell centre sits h/2 from the wall: small but not zero
        assert abs(b[0, 16, 16]) < 0.1
        assert abs(b[16, 16, 16]) > 0.9

    def test_eigenvalue_identity(self):
        """A b = lambda b under the mirror ghost condition."""
        n, h = 16, 1 / 16
        b = rhs_field_dirichlet((n, n, n), h)
        lam = dirichlet_operator_eigenvalue(h)
        # apply the operator with explicit mirror ghosts
        ext = np.zeros((n + 2,) * 3)
        ext[1:-1, 1:-1, 1:-1] = b
        for axis in range(3):
            lo = [slice(1, -1)] * 3
            hi = [slice(1, -1)] * 3
            lo[axis] = 0
            hi[axis] = -1
            src_lo = [slice(1, -1)] * 3
            src_hi = [slice(1, -1)] * 3
            src_lo[axis] = 1
            src_hi[axis] = -2
            ext[tuple(lo)] = -ext[tuple(src_lo)]
            ext[tuple(hi)] = -ext[tuple(src_hi)]
        c = 1.0 / h**2
        Ab = (
            -6.0 * c * ext[1:-1, 1:-1, 1:-1]
            + c * (ext[2:, 1:-1, 1:-1] + ext[:-2, 1:-1, 1:-1])
            + c * (ext[1:-1, 2:, 1:-1] + ext[1:-1, :-2, 1:-1])
            + c * (ext[1:-1, 1:-1, 2:] + ext[1:-1, 1:-1, :-2])
        )
        np.testing.assert_allclose(Ab, lam * b, rtol=1e-8, atol=1e-8)


class TestDirichletSolves:
    @pytest.fixture(scope="class")
    def serial(self):
        solver = GMGSolver(SolverConfig(**BASE, boundary="dirichlet"))
        result = solver.solve()
        return solver, result

    def test_converges_to_closed_form(self, serial):
        solver, result = serial
        assert result.converged
        exact = discrete_solution_dirichlet((32, 32, 32), 1 / 32)
        assert np.abs(solver.solution() - exact).max() < 1e-11

    @pytest.mark.parametrize("dims", [(2, 1, 1), (2, 2, 2)])
    def test_distributed_matches_serial(self, serial, dims):
        solver, _ = serial
        dist = GMGSolver(SolverConfig(**BASE, boundary="dirichlet",
                                      rank_dims=dims))
        dist.solve()
        np.testing.assert_array_equal(dist.solution(), solver.solution())

    def test_ca_matches_non_ca_to_rounding(self, serial):
        """Mirror arithmetic is antisymmetric only up to reassociation,
        so CA redundant ghost updates agree to rounding, not bitwise."""
        solver, _ = serial
        plain = GMGSolver(SolverConfig(**BASE, boundary="dirichlet",
                                       communication_avoiding=False))
        plain.solve()
        np.testing.assert_allclose(
            plain.solution(), solver.solution(), atol=1e-14
        )

    def test_gsrb_dirichlet(self):
        solver = GMGSolver(SolverConfig(**BASE, boundary="dirichlet",
                                        smoother="gsrb"))
        result = solver.solve()
        assert result.converged
        exact = discrete_solution_dirichlet((32, 32, 32), 1 / 32)
        assert np.abs(solver.solution() - exact).max() < 1e-11

    def test_cg_bottom_dirichlet_skips_projection(self):
        solver = GMGSolver(SolverConfig(**BASE, boundary="dirichlet",
                                        bottom_solver="cg"))
        assert not solver.vcycle.bottom_solver.project_nullspace
        result = solver.solve()
        assert result.converged

    def test_fft_bottom_rejected_for_dirichlet(self):
        with pytest.raises(ValueError, match="FFT"):
            SolverConfig(**BASE, boundary="dirichlet", bottom_solver="fft")

    def test_invalid_boundary_rejected(self):
        with pytest.raises(ValueError, match="boundary"):
            SolverConfig(**BASE, boundary="robin")

    def test_no_messages_cross_the_wall(self):
        solver = GMGSolver(SolverConfig(**BASE, boundary="dirichlet",
                                        rank_dims=(2, 1, 1), max_vcycles=1,
                                        tol=0.0))
        solver.solve()
        periodic = GMGSolver(SolverConfig(**BASE, rank_dims=(2, 1, 1),
                                          max_vcycles=1, tol=0.0))
        periodic.solve()
        # with a wall between the two ranks in x only the +x/-x internal
        # faces exchange; every other direction is boundary-filled
        assert (
            sum(solver.recorder.message_counts_by_level().values())
            < sum(periodic.recorder.message_counts_by_level().values())
        )
