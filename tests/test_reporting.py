"""Report renderers: paper-format output."""

import pytest

from repro.harness import experiments as E
from repro.harness import reporting as R


@pytest.fixture(scope="module")
def fig3():
    return E.fig3_time_per_level()


class TestRenderers:
    def test_fig3_table(self, fig3):
        text = R.render_fig3(fig3)
        assert "Figure 3" in text
        assert "level 5" in text
        assert "Perlmutter" in text

    def test_fig4_table(self):
        text = R.render_fig4(E.fig4_vs_hpgmg())
        assert "HPGMG" in text
        assert "x" in text

    def test_table2(self):
        text = R.render_table2(E.table2_op_breakdown())
        assert "smooth+residual" in text
        assert "%" in text

    def test_fig5(self):
        text = R.render_fig5(E.fig5_kernel_throughput("applyOp"))
        assert "GStencil/s" in text
        assert "alpha" in text

    def test_fig6(self):
        text = R.render_fig6(E.fig6_exchange_bandwidth())
        assert "GB/s" in text
        assert "MB" in text

    def test_portability(self):
        text = R.render_portability(E.table3_portability_roofline(), "Table III")
        assert "overall Phi = 73%" in text

    def test_table4(self):
        from repro.perf import ai_comparison_rows

        text = R.render_table4(ai_comparison_rows())
        assert "applyOp" in text
        assert "0.500" in text

    def test_fig7(self):
        text = R.render_fig7(E.fig7_potential_speedup())
        assert "potential=" in text

    def test_scaling(self):
        text = R.render_scaling(E.fig8_weak_scaling("Sunspot"))
        assert "weak" in text
        assert "efficiency" in text
        strong = R.render_scaling(E.fig9_strong_scaling("Sunspot"))
        assert "Figure 9" in strong

    def test_ablation(self):
        text = R.render_ablation(E.ablation_optimizations())
        assert "no-communication-avoiding" in text
        assert "1.00x" in text


class TestAsciiPlots:
    def test_kernel_plot(self):
        from repro.harness.ascii_plot import plot_kernel_throughput

        text = plot_kernel_throughput(E.fig5_kernel_throughput("applyOp"))
        assert "GStencil/s" in text
        assert "* Perlmutter" in text
        assert "(log)" in text

    def test_exchange_plot(self):
        from repro.harness.ascii_plot import plot_exchange_bandwidth

        text = plot_exchange_bandwidth(E.fig6_exchange_bandwidth())
        assert "GB/s" in text

    def test_scaling_plot(self):
        from repro.harness.ascii_plot import plot_scaling

        text = plot_scaling([E.fig8_weak_scaling("Sunspot")])
        assert "weak GStencil/s" in text

    def test_plot_validation(self):
        import pytest as _pytest

        from repro.harness.ascii_plot import ascii_plot

        with _pytest.raises(ValueError, match="at least one series"):
            ascii_plot({})
        with _pytest.raises(ValueError, match="mismatched"):
            ascii_plot({"a": ([1.0], [1.0, 2.0])})
        with _pytest.raises(ValueError, match="positive"):
            ascii_plot({"a": ([0.0, 1.0], [1.0, 2.0])})
        with _pytest.raises(ValueError, match="8x4"):
            ascii_plot({"a": ([1.0, 2.0], [1.0, 2.0])}, width=4)

    def test_linear_axes(self):
        from repro.harness.ascii_plot import ascii_plot

        text = ascii_plot(
            {"a": ([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])},
            logx=False,
            logy=False,
        )
        assert "(log)" not in text

    def test_flat_series_does_not_crash(self):
        from repro.harness.ascii_plot import ascii_plot

        text = ascii_plot({"flat": ([1.0, 2.0], [5.0, 5.0])})
        assert "flat" in text
