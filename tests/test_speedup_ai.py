"""Potential speedup (Fig 7) and AI bookkeeping (Tables IV/V inputs)."""

import numpy as np
import pytest

from repro.machines import FRONTIER, MACHINES, PERLMUTTER
from repro.perf import (
    achieved_ai,
    ai_comparison_rows,
    iso_speedup_curve,
    potential_speedup,
)
from repro.perf.ai import achieved_bytes_per_point
from repro.perf.speedup import machine_speedup_points


class TestPotentialSpeedup:
    def test_formula(self):
        assert potential_speedup(0.5, 0.5) == pytest.approx(4.0)
        assert potential_speedup(1.0, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            potential_speedup(0.0, 0.5)
        with pytest.raises(ValueError):
            potential_speedup(0.5, 1.5)

    def test_iso_curve_lies_on_the_curve(self):
        x, y = iso_speedup_curve(2.0)
        np.testing.assert_allclose(1.0 / (x * y), 2.0, rtol=1e-12)

    def test_iso_curve_within_unit_square(self):
        x, y = iso_speedup_curve(3.0)
        assert np.all((x > 0) & (x <= 1.0))
        assert np.all((y > 0) & (y <= 1.0))

    def test_iso_curve_validation(self):
        with pytest.raises(ValueError):
            iso_speedup_curve(0.5)

    def test_paper_fig7_claims(self):
        """NVIDIA at most ~1.2x potential; MI250X interp outlier ~4x;
        PVC between ~1.5x and ~2.7x."""
        pts = machine_speedup_points(PERLMUTTER)
        assert max(sp for _, _, sp in pts.values()) <= 1.25
        pts_f = machine_speedup_points(FRONTIER)
        _, _, interp = pts_f["interpolation+increment"]
        assert 3.0 <= interp <= 4.0
        others = [sp for op, (_, _, sp) in pts_f.items()
                  if op != "interpolation+increment"]
        assert all(sp <= 1.65 for sp in others)


class TestAchievedAI:
    def test_achieved_below_theoretical(self):
        for m in MACHINES.values():
            assert achieved_ai(m, "applyOp") <= 0.5

    def test_achieved_bytes_at_least_compulsory(self):
        for m in MACHINES.values():
            assert achieved_bytes_per_point(m, "applyOp") >= 16.0

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            achieved_ai(PERLMUTTER, "fft")

    def test_comparison_rows_cover_table_iv(self):
        rows = ai_comparison_rows()
        assert len(rows) == 5
        for op, ours, paper, diff in rows:
            assert diff == pytest.approx(abs(ours - paper))
            assert diff <= 0.03
