"""MetricsRegistry semantics: snapshots, name collisions, solve bridge."""

import pytest

from repro.gmg import GMGSolver, SolverConfig
from repro.obs import MetricsRegistry, solve_metrics


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("k", 2)
        reg.counter("k", 3)
        assert reg.get("k") == 5

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only increase"):
            reg.counter("k", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.get("g") == 7.5

    def test_counter_name_cannot_become_gauge(self):
        reg = MetricsRegistry()
        reg.counter("x", 1)
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("x", 2.0)
        assert reg.get("x") == 1  # the counter survives the rejection

    def test_gauge_name_cannot_become_counter(self):
        reg = MetricsRegistry()
        reg.gauge("y", 3.0)
        with pytest.raises(ValueError, match="already a gauge"):
            reg.counter("y", 1)
        assert reg.get("y") == 3.0


class TestSnapshot:
    def test_tidy_exports_whole_floats_as_ints(self):
        reg = MetricsRegistry()
        reg.counter("whole", 4.0)
        reg.counter("fractional", 2.5)
        reg.gauge("whole_gauge", 9.0)
        reg.gauge("frac_gauge", 0.125)
        snap = reg.snapshot()
        assert snap["counters"]["whole"] == 4
        assert isinstance(snap["counters"]["whole"], int)
        assert snap["counters"]["fractional"] == 2.5
        assert isinstance(snap["counters"]["fractional"], float)
        assert isinstance(snap["gauges"]["whole_gauge"], int)
        assert isinstance(snap["gauges"]["frac_gauge"], float)

    def test_snapshot_sorted_and_partitioned(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        reg.gauge("z", 1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert list(snap["gauges"]) == ["z"]


class TestSolveMetricsBridge:
    @pytest.fixture(scope="class")
    def multirank_result(self):
        config = SolverConfig(
            global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
            bottom_smooths=20, max_vcycles=2, rank_dims=(2, 1, 1),
        )
        return GMGSolver(config).solve()

    def test_multirank_recorder_counts_traffic(self, multirank_result):
        snap = solve_metrics(multirank_result.recorder).snapshot()
        counters = snap["counters"]
        assert counters["messages.total"] > 0
        assert counters["messages.bytes"] > 0
        assert counters["exchanges.total"] > 0
        assert counters["kernels.total"] > 0
        # both levels exchanged ghosts
        assert counters["messages.level0.count"] > 0
        assert counters["messages.level1.count"] > 0

    def test_tracer_gauges_join_snapshot(self, multirank_result):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.span("solve"):
            pass
        snap = solve_metrics(multirank_result.recorder, tracer).snapshot()
        assert snap["gauges"]["trace.spans"] == 1
        assert snap["gauges"]["trace.wallclock_s"] >= 0
