"""The span tracer: nesting, ordering, null fast path, Chrome export."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
)


class FakeClock:
    """Deterministic monotonic clock: advances 1.0 per call."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def _nested_trace() -> Tracer:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("solve"):
        with tracer.span("vcycle", v=0):
            with tracer.span("level", l=0):
                with tracer.span("smooth", l=0):
                    pass
            with tracer.span("level", l=1):
                pass
        tracer.instant("fault:detect_drop", rank=1)
    return tracer


class TestSpanNesting:
    def test_open_spans_close_lifo(self):
        tracer = _nested_trace()
        assert tracer.open_depth == 0
        assert len(tracer.spans) == 5

    def test_preorder_indices_follow_opening_order(self):
        tracer = _nested_trace()
        names = [s.name for s in tracer.ordered_spans()]
        assert names == ["solve", "vcycle", "level", "smooth", "level"]

    def test_parent_links_form_the_tree(self):
        tracer = _nested_trace()
        by_index = {s.index: s for s in tracer.spans}
        solve, vcycle, lev0, smooth, lev1 = tracer.ordered_spans()
        assert solve.parent is None
        assert by_index[vcycle.parent] is solve
        assert by_index[lev0.parent] is vcycle
        assert by_index[smooth.parent] is lev0
        assert by_index[lev1.parent] is vcycle

    def test_depths_match_nesting(self):
        tracer = _nested_trace()
        assert [s.depth for s in tracer.ordered_spans()] == [0, 1, 2, 3, 2]

    def test_child_interval_contained_in_parent(self):
        tracer = _nested_trace()
        by_index = {s.index: s for s in tracer.spans}
        for s in tracer.spans:
            if s.parent is not None:
                parent = by_index[s.parent]
                assert parent.start <= s.start
                assert s.end <= parent.end

    def test_sibling_spans_do_not_overlap(self):
        tracer = _nested_trace()
        levels = tracer.find("level")
        assert levels[0].end <= levels[1].start

    def test_attrs_and_helpers(self):
        tracer = _nested_trace()
        vcycle = tracer.find("vcycle")[0]
        assert vcycle.attrs == {"v": 0}
        assert [s.name for s in tracer.roots()] == ["solve"]
        assert [s.name for s in tracer.children_of(vcycle)] == ["level", "level"]
        assert tracer.total_time() == tracer.find("solve")[0].duration

    def test_instant_parented_to_open_span(self):
        tracer = _nested_trace()
        (instant,) = tracer.instants
        solve = tracer.find("solve")[0]
        assert instant.parent == solve.index
        assert solve.contains(instant.timestamp)
        assert instant.attrs == {"rank": 1}

    def test_instant_without_open_span_is_rootless(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("fault:rollback")
        assert tracer.instants[0].parent is None

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert [s.name for s in tracer.ordered_spans()] == ["outer", "inner"]

    def test_clear_keeps_tracer_usable(self):
        tracer = _nested_trace()
        tracer.clear()
        assert tracer.spans == [] and tracer.instants == []
        with tracer.span("again"):
            pass
        assert len(tracer.spans) == 1


class TestChildTracers:
    def test_child_shares_clock_and_epoch(self):
        """Per-rank timestamps must be comparable with the root's —
        the critical-path extractor orders sends on one timeline
        against receives on another."""
        clock = FakeClock()
        root = Tracer(clock=clock)
        child = root.child(1)
        assert child._epoch == root._epoch
        assert child.rank == 1
        with root.span("a"):
            pass
        with child.span("b"):
            pass
        assert child.spans[0].start > root.spans[0].end

    def test_child_is_cached_per_rank(self):
        root = Tracer(clock=FakeClock())
        assert root.child(0) is root.child(0)
        assert root.child(0) is not root.child(1)
        assert sorted(root.children) == [0, 1]

    def test_children_have_independent_stacks(self):
        root = Tracer(clock=FakeClock())
        with root.span("root-span"):
            with root.child(0).span("rank-span"):
                assert root.open_depth == 1
                assert root.child(0).open_depth == 1
        assert [s.name for s in root.spans] == ["root-span"]
        assert [s.name for s in root.child(0).spans] == ["rank-span"]

    def test_clear_recurses_but_keeps_children_registered(self):
        root = Tracer(clock=FakeClock())
        child = root.child(2)
        with child.span("x"):
            pass
        root.clear()
        assert child.spans == []
        assert root.children[2] is child  # held references keep working

    def test_null_tracer_child_is_itself(self):
        assert NULL_TRACER.child(3) is NULL_TRACER


class TestInstantRankRouting:
    """Fault instants carrying a rank land on that rank's timeline."""

    def test_fault_instant_exports_on_owning_rank_pid(self):
        from repro.obs.chrome_trace import rank_pid

        tracer = Tracer(clock=FakeClock())
        with tracer.span("solve"):
            tracer.instant("fault:detect_drop", rank=1, src=0, tag=5)
            tracer.instant("fault:rollback")  # solve-wide: no rank
            tracer.instant("fault:inject_corrupt", rank=0)
        events = {
            e["name"]: e
            for e in to_chrome_trace(tracer)["traceEvents"]
            if e["ph"] == "i"
        }
        assert events["fault:detect_drop"]["pid"] == rank_pid(1)
        assert events["fault:inject_corrupt"]["pid"] == rank_pid(0)
        assert events["fault:rollback"]["pid"] == 1

    def test_negative_and_bool_ranks_stay_global(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("fault:a", rank=-1)
        tracer.instant("fault:b", rank=True)  # not a rank index
        obj = to_chrome_trace(tracer)
        assert all(
            e["pid"] == 1 for e in obj["traceEvents"] if e["ph"] == "i"
        )

    def test_routed_instant_gets_process_name(self):
        """A rank timeline that only ever receives an instant still
        needs its Perfetto process label."""
        tracer = Tracer(clock=FakeClock())
        tracer.instant("fault:detect_drop", rank=4)
        obj = to_chrome_trace(tracer)
        labels = {
            e["pid"]: e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels[6] == "rank 4"  # rank_pid(4)
        counts = validate_chrome_trace(obj)
        assert counts["instants"] == 1 and counts["metadata"] == 2


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        with null.span("solve", v=1):
            null.instant("fault:retry")
        assert not null.enabled

    def test_span_is_shared_singleton(self):
        # the disabled fast path must not allocate per span
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", l=3)


class TestChromeTrace:
    def test_roundtrip_validates(self):
        tracer = _nested_trace()
        obj = to_chrome_trace(tracer, metadata={"run": "test"})
        counts = validate_chrome_trace(obj)
        # the rank=1 fault instant is routed to rank 1's pid, so the
        # trace carries two processes (global + rank 1), each named
        assert counts == {"spans": 5, "instants": 1, "metadata": 2, "pids": 2}
        # survives JSON serialisation byte-for-byte
        again = json.loads(json.dumps(obj))
        assert validate_chrome_trace(again) == counts
        assert again["otherData"] == {"run": "test"}

    def test_events_sorted_and_microseconds(self):
        tracer = _nested_trace()
        events = to_chrome_trace(tracer)["traceEvents"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        solve = next(e for e in events if e["name"] == "solve")
        span = next(s for s in tracer.spans if s.name == "solve")
        assert solve["ts"] == pytest.approx(span.start * 1e6)
        assert solve["dur"] == pytest.approx(span.duration * 1e6)
        assert solve["ph"] == "X"

    def test_instants_are_instant_phase(self):
        tracer = _nested_trace()
        events = to_chrome_trace(tracer)["traceEvents"]
        fault = next(e for e in events if e["name"].startswith("fault:"))
        assert fault["ph"] == "i"
        assert fault["s"] == "t"
        assert fault["cat"] == "fault"

    @pytest.mark.parametrize(
        "broken",
        [
            [],  # not an object
            {},  # no traceEvents
            {"traceEvents": {}},  # wrong container
            {"traceEvents": [{"ph": "X"}]},  # missing keys
            {"traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
            ]},  # complete event without dur
            {"traceEvents": [
                {"name": "a", "ph": "q", "ts": 0, "pid": 1, "tid": 1}
            ]},  # unsupported phase
            {"traceEvents": [
                {"name": "a", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 1, "dur": 1, "pid": 1, "tid": 1},
            ]},  # unsorted
        ],
    )
    def test_schema_violations_rejected(self, broken):
        with pytest.raises(ValueError):
            validate_chrome_trace(broken)
