"""Cross-rank timing statistics and the artifact output format."""

import math

import pytest

from repro.perf import TimingStat, format_level_timing


class TestTimingStat:
    def test_basic_stats(self):
        s = TimingStat.from_samples([1.0, 2.0, 3.0])
        assert s.min == 1.0
        assert s.avg == pytest.approx(2.0)
        assert s.max == 3.0
        assert s.stdev == pytest.approx(math.sqrt(2 / 3))
        assert s.count == 3

    def test_single_sample(self):
        s = TimingStat.from_samples([5.0])
        assert (s.min, s.avg, s.max, s.stdev) == (5.0, 5.0, 5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingStat.from_samples([])

    def test_format_contains_min_avg_max(self):
        s = TimingStat.from_samples([0.265012, 0.265184, 0.265346])
        text = s.format()
        assert text.startswith("[0.265012, ")
        assert "sigma:" in text

    def test_format_is_ascii(self):
        # the artifact rows use "sigma", not the Greek letter, and must
        # survive ASCII-only terminals
        s = TimingStat.from_samples([0.1, 0.2])
        s.format().encode("ascii")
        format_level_timing(3, "smooth", s).encode("ascii")

    def test_level_row_matches_artifact_format(self):
        s = TimingStat.from_samples([0.1, 0.1, 0.1])
        row = format_level_timing(0, "applyOp", s)
        assert row.startswith("level 0 applyOp [")
