"""Variable-coefficient multigrid."""

import numpy as np
import pytest

from repro.dsl import analyze
from repro.gmg.varcoef import (
    VARIABLE_APPLY_OP,
    VARIABLE_SMOOTH,
    VARIABLE_SMOOTH_RESIDUAL,
    VarCoefLevel,
    VariableCoefficientJacobi,
    VariableCoefficientSolver,
)


def beta_smooth(x, y, z):
    return 1.0 + 0.5 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y) + (
        0.25 * np.cos(2 * np.pi * z)
    )


def manufactured_u(n: int) -> np.ndarray:
    c = (np.arange(n) + 0.5) / n
    u = (
        np.sin(2 * np.pi * c)[:, None, None]
        * np.sin(4 * np.pi * c)[None, :, None]
        * np.cos(2 * np.pi * c)[None, None, :]
    )
    return u - u.mean()


class TestKernels:
    def test_apply_op_reads_coefficient_grids(self):
        an = analyze(VARIABLE_APPLY_OP)
        assert set(an.input_grids) == {"x", "c0", "cx", "cy", "cz"}
        assert an.halo_grids == ("x",)

    def test_smooth_uses_precomputed_diagonal(self):
        an = analyze(VARIABLE_SMOOTH)
        assert "dinv" in an.input_grids
        assert an.radius == 0

    def test_smooth_residual_outputs(self):
        an = analyze(VARIABLE_SMOOTH_RESIDUAL)
        assert set(an.output_grids) == {"x", "r"}


class TestVarCoefLevel:
    def test_coefficient_derivation(self):
        lv = VarCoefLevel(0, (8, 8, 8), 4, h=1 / 8)
        beta = np.full((8, 8, 8), 2.0)
        lv.set_coefficient(beta)
        np.testing.assert_allclose(lv.cx.to_ijk(), 2.0 * 64.0)
        np.testing.assert_allclose(lv.c0.to_ijk(), -6.0 * 2.0 * 64.0)
        np.testing.assert_allclose(lv.dinv.to_ijk(), 1.0 / (-768.0))

    def test_positive_coefficient_required(self):
        lv = VarCoefLevel(0, (8, 8, 8), 4, h=1 / 8)
        with pytest.raises(ValueError, match="positive"):
            lv.set_coefficient(np.zeros((8, 8, 8)))

    def test_fields_include_coefficients(self):
        lv = VarCoefLevel(0, (8, 8, 8), 4, h=1 / 8)
        assert {"c0", "cx", "cy", "cz", "dinv"} <= set(lv.fields())


class TestOperator:
    def test_constant_beta_recovers_paper_operator(self):
        """beta = 1 must reproduce the constant-coefficient A exactly."""
        from tests.conftest import reference_apply_op

        s = VariableCoefficientSolver(
            lambda x, y, z: np.ones_like(x + y + z),
            global_cells=16, num_levels=2, brick_dim=4,
        )
        rng = np.random.default_rng(5)
        u = rng.random((16, 16, 16))
        Au = s.apply_operator(u)
        c = s.rank_levels[0][0].constants
        oracle = reference_apply_op(u, c.alpha, c.beta)
        np.testing.assert_allclose(Au, oracle, rtol=1e-12)

    def test_row_sums_vanish(self):
        """Conservation: A applied to a constant is zero."""
        s = VariableCoefficientSolver(beta_smooth, global_cells=16,
                                      num_levels=2, brick_dim=4)
        Au = s.apply_operator(np.full((16, 16, 16), 3.7))
        assert np.abs(Au).max() < 1e-7  # c0 = -2(cx+cy+cz) exactly

    def test_distributed_operator_matches_serial(self):
        u = manufactured_u(16)
        serial = VariableCoefficientSolver(beta_smooth, global_cells=16,
                                           num_levels=2, brick_dim=4)
        dist = VariableCoefficientSolver(beta_smooth, global_cells=16,
                                         num_levels=2, brick_dim=4,
                                         rank_dims=(2, 1, 1))
        np.testing.assert_array_equal(
            serial.apply_operator(u), dist.apply_operator(u)
        )


class TestSolve:
    @pytest.fixture(scope="class")
    def solved(self):
        s = VariableCoefficientSolver(beta_smooth, global_cells=32,
                                      num_levels=3, brick_dim=4,
                                      max_smooths=8, bottom_smooths=60)
        u = manufactured_u(32)
        b = s.apply_operator(u)
        s.set_rhs(b)
        result = s.solve(tol=1e-9, max_vcycles=60)
        return s, u, result

    def test_converges(self, solved):
        _, _, result = solved
        assert result.converged
        assert result.num_vcycles < 20

    def test_recovers_manufactured_solution(self, solved):
        s, u, _ = solved
        sol = s.solution()
        sol -= sol.mean()
        assert np.abs(sol - u).max() < 1e-9

    def test_residual_decreases(self, solved):
        _, _, result = solved
        h = result.residual_history
        assert all(b < a for a, b in zip(h, h[1:]))

    def test_distributed_solve_matches_serial(self, solved):
        s, u, _ = solved
        dist = VariableCoefficientSolver(beta_smooth, global_cells=32,
                                         num_levels=3, brick_dim=4,
                                         max_smooths=8, bottom_smooths=60,
                                         rank_dims=(2, 1, 1))
        dist.set_rhs(dist.apply_operator(u))
        dist.solve(tol=1e-9, max_vcycles=60)
        a = s.solution()
        b = dist.solution()
        np.testing.assert_allclose(a - a.mean(), b - b.mean(), atol=1e-12)

    def test_rank_dims_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            VariableCoefficientSolver(beta_smooth, global_cells=16,
                                      num_levels=2, rank_dims=(3, 1, 1))

    def test_smoother_validation(self):
        with pytest.raises(ValueError):
            VariableCoefficientJacobi(omega=0.0)

    def test_rough_coefficient_still_converges(self):
        """A 10:1 coefficient jump (smoothly varying) still solves."""

        def rough(x, y, z):
            return 1.0 + 9.0 * (0.5 + 0.5 * np.sin(2 * np.pi * x) *
                                np.sin(2 * np.pi * y) * np.sin(2 * np.pi * z))

        s = VariableCoefficientSolver(rough, global_cells=32, num_levels=3,
                                      brick_dim=4, max_smooths=8,
                                      bottom_smooths=60)
        u = manufactured_u(32)
        s.set_rhs(s.apply_operator(u))
        result = s.solve(tol=1e-8, max_vcycles=80)
        assert result.converged
