"""DSL AST construction and structural identity."""

import pytest

from repro.dsl import (
    Assignment,
    BinOp,
    Const,
    ConstRef,
    Grid,
    GridRef,
    Index,
    Stencil,
    indices,
)


class TestIndex:
    def test_indices_helper(self):
        i, j, k = indices()
        assert (i.dim, j.dim, k.dim) == (0, 1, 2)
        assert (i.offset, j.offset, k.offset) == (0, 0, 0)

    def test_shift_arithmetic(self):
        i, _, _ = indices()
        assert (i + 1).offset == 1
        assert (i - 2).offset == -2
        assert ((i + 1) + 1).offset == 2

    def test_shift_does_not_mutate(self):
        i, _, _ = indices()
        _ = i + 5
        assert i.offset == 0

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            Index(3)

    def test_repr(self):
        i, j, k = indices()
        assert repr(i + 1) == "i+1"
        assert repr(k) == "k"


class TestGrid:
    def test_call_produces_ref(self):
        i, j, k = indices()
        x = Grid("x")
        ref = x(i + 1, j, k - 2)
        assert isinstance(ref, GridRef)
        assert ref.grid == "x"
        assert ref.offsets == (1, 0, -2)

    def test_wrong_index_order_rejected(self):
        i, j, k = indices()
        x = Grid("x")
        with pytest.raises(ValueError):
            x(j, i, k)

    def test_non_identifier_name_rejected(self):
        with pytest.raises(ValueError):
            Grid("not a name")

    def test_only_3d(self):
        with pytest.raises(ValueError):
            Grid("x", rank=2)


class TestExpressions:
    def test_binop_tree(self):
        i, j, k = indices()
        x = Grid("x")
        e = 2.0 * x(i, j, k) + x(i + 1, j, k)
        assert isinstance(e, BinOp)
        assert e.op == "+"

    def test_numeric_wrapping(self):
        i, j, k = indices()
        x = Grid("x")
        e = x(i, j, k) + 1
        assert isinstance(e.rhs, Const)
        assert e.rhs.value == 1.0

    def test_all_operators(self):
        i, j, k = indices()
        x = Grid("x")
        r = x(i, j, k)
        for e, op in [(r + r, "+"), (r - r, "-"), (r * r, "*"), (r / r, "/")]:
            assert e.op == op

    def test_reflected_operators(self):
        i, j, k = indices()
        r = Grid("x")(i, j, k)
        assert (1 + r).op == "+"
        assert (1 - r).op == "-"
        assert (2 / r).op == "/"

    def test_negation(self):
        i, j, k = indices()
        r = Grid("x")(i, j, k)
        e = -r
        assert e.op == "*"
        assert e.lhs.value == -1.0

    def test_rejects_foreign_types(self):
        i, j, k = indices()
        r = Grid("x")(i, j, k)
        with pytest.raises(TypeError):
            r + "beta"  # type: ignore[operator]

    def test_structural_keys_equal_for_equal_exprs(self):
        i, j, k = indices()
        x = Grid("x")
        a = x(i + 1, j, k) * ConstRef("c")
        b = x(i + 1, j, k) * ConstRef("c")
        assert a.key() == b.key()

    def test_structural_keys_differ(self):
        i, j, k = indices()
        x = Grid("x")
        assert x(i + 1, j, k).key() != x(i - 1, j, k).key()


class TestConstRef:
    def test_identifier_required(self):
        with pytest.raises(ValueError):
            ConstRef("2bad")

    def test_key(self):
        assert ConstRef("alpha").key() == ("constref", "alpha")


class TestAssignmentAndStencil:
    def test_assign_requires_unshifted_target(self):
        i, j, k = indices()
        out = Grid("out")
        with pytest.raises(ValueError):
            out(i + 1, j, k).assign(1.0)

    def test_assign_wraps_numbers(self):
        i, j, k = indices()
        a = Grid("out")(i, j, k).assign(2)
        assert isinstance(a, Assignment)
        assert isinstance(a.expr, Const)

    def test_stencil_requires_assignments(self):
        with pytest.raises(ValueError):
            Stencil("empty", [])

    def test_stencil_rejects_duplicate_outputs(self):
        i, j, k = indices()
        out = Grid("out")
        with pytest.raises(ValueError):
            Stencil("dup", [out(i, j, k).assign(1.0), out(i, j, k).assign(2.0)])

    def test_output_grids(self):
        i, j, k = indices()
        a, b = Grid("a"), Grid("b")
        s = Stencil("two", [a(i, j, k).assign(1.0), b(i, j, k).assign(2.0)])
        assert s.output_grids == ("a", "b")

    def test_stencil_key_is_structural(self):
        def build():
            i, j, k = indices()
            x, y = Grid("x"), Grid("y")
            return Stencil("s", [y(i, j, k).assign(x(i + 1, j, k) * 2.0)])

        assert build().key() == build().key()
