"""Unit tests for the brick-grid index arithmetic and adjacency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bricks.brick_grid import (
    CENTER_DIRECTION_INDEX,
    DIRECTIONS,
    NEIGHBOR_DIRECTIONS,
    BrickGrid,
    direction_index,
    direction_kind,
    opposite_index,
)


class TestDirections:
    def test_there_are_27_directions(self):
        assert len(DIRECTIONS) == 27

    def test_center_index(self):
        assert DIRECTIONS[CENTER_DIRECTION_INDEX] == (0, 0, 0)

    def test_26_neighbor_directions(self):
        assert len(NEIGHBOR_DIRECTIONS) == 26
        assert (0, 0, 0) not in NEIGHBOR_DIRECTIONS

    def test_direction_index_roundtrip(self):
        for i, d in enumerate(DIRECTIONS):
            assert direction_index(d) == i

    def test_direction_index_rejects_bad_components(self):
        with pytest.raises(ValueError):
            direction_index((2, 0, 0))

    def test_opposite_index(self):
        for i, d in enumerate(DIRECTIONS):
            opp = DIRECTIONS[opposite_index(i)]
            assert opp == tuple(-c for c in d)

    def test_opposite_index_out_of_range(self):
        with pytest.raises(ValueError):
            opposite_index(27)
        with pytest.raises(ValueError):
            opposite_index(-1)

    def test_direction_kinds(self):
        assert direction_kind((0, 0, 0)) == "center"
        assert direction_kind((1, 0, 0)) == "face"
        assert direction_kind((1, -1, 0)) == "edge"
        assert direction_kind((1, 1, -1)) == "corner"

    def test_kind_census(self):
        kinds = [direction_kind(d) for d in NEIGHBOR_DIRECTIONS]
        assert kinds.count("face") == 6
        assert kinds.count("edge") == 12
        assert kinds.count("corner") == 8


class TestConstruction:
    def test_basic_shapes(self, small_grid):
        assert small_grid.shape_cells == (16, 12, 8)
        assert small_grid.extended_shape == (6, 5, 4)
        assert small_grid.num_slots == 120
        assert small_grid.num_interior == 24
        assert small_grid.cells_per_brick == 64
        assert small_grid.ghost_cells == 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BrickGrid((0, 1, 1), 4)
        with pytest.raises(ValueError):
            BrickGrid((1, 1), 4)  # type: ignore[arg-type]

    def test_rejects_bad_brick_dim(self):
        with pytest.raises(ValueError):
            BrickGrid((2, 2, 2), 0)

    def test_rejects_negative_ghost(self):
        with pytest.raises(ValueError):
            BrickGrid((2, 2, 2), 4, ghost_bricks=-1)

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            BrickGrid((2, 2, 2), 4, ordering="zigzag")

    def test_zero_ghost_grid(self):
        g = BrickGrid((3, 3, 3), 2, ghost_bricks=0)
        assert g.num_slots == g.num_interior == 27
        assert len(g.ghost_slots) == 0


class TestCoordinates:
    def test_slot_of_is_bijective(self, small_grid):
        seen = set()
        g = small_grid.ghost_bricks
        for x in range(-g, 4 + g):
            for y in range(-g, 3 + g):
                for z in range(-g, 2 + g):
                    seen.add(small_grid.slot_of((x, y, z)))
        assert seen == set(range(small_grid.num_slots))

    def test_slot_of_out_of_range(self, small_grid):
        with pytest.raises(IndexError):
            small_grid.slot_of((5, 0, 0))
        with pytest.raises(IndexError):
            small_grid.slot_of((-2, 0, 0))

    def test_slot_to_grid_inverse(self, small_grid):
        coords = small_grid.slot_to_grid
        for slot in range(small_grid.num_slots):
            x, y, z = coords[slot]
            assert small_grid.grid_to_slot[x, y, z] == slot

    def test_interior_slots_are_lexicographic(self, small_grid):
        # interior order must follow interior grid coordinates so dense
        # round-trips are ordering-independent
        slots = small_grid.interior_slots
        expected = [
            small_grid.slot_of((x, y, z))
            for x in range(4)
            for y in range(3)
            for z in range(2)
        ]
        assert list(slots) == expected

    def test_ghost_and_interior_partition_slots(self, small_grid):
        interior = set(small_grid.interior_slots.tolist())
        ghost = set(small_grid.ghost_slots.tolist())
        assert interior.isdisjoint(ghost)
        assert interior | ghost == set(range(small_grid.num_slots))


class TestAdjacency:
    def test_center_is_self(self, small_grid):
        adj = small_grid.adjacency
        assert np.array_equal(
            adj[:, CENTER_DIRECTION_INDEX], np.arange(small_grid.num_slots)
        )

    def test_interior_adjacency_matches_coordinates(self, small_grid):
        for d in NEIGHBOR_DIRECTIONS:
            di = direction_index(d)
            s = small_grid.slot_of((1, 1, 1))
            expected = small_grid.slot_of((1 + d[0], 1 + d[1], 1 + d[2]))
            assert small_grid.adjacency[s, di] == expected

    def test_outer_shell_clamps_to_self(self, small_grid):
        g = small_grid.ghost_bricks
        corner = small_grid.slot_of((-g, -g, -g))
        di = direction_index((-1, -1, -1))
        assert small_grid.adjacency[corner, di] == corner

    def test_adjacency_is_symmetric(self, small_grid):
        adj = small_grid.adjacency
        for d in NEIGHBOR_DIRECTIONS:
            di, dj = direction_index(d), direction_index(tuple(-c for c in d))
            for s in small_grid.interior_slots[:6]:
                nb = adj[s, di]
                if nb != s:
                    assert adj[nb, dj] == s


class TestRegions:
    def test_ghost_regions_partition_the_shell(self, small_grid):
        all_ghost: list[int] = []
        for d in NEIGHBOR_DIRECTIONS:
            all_ghost.extend(small_grid.ghost_region_slots(d).tolist())
        assert sorted(all_ghost) == small_grid.ghost_slots.tolist()

    def test_ghost_region_rejects_center(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.ghost_region_slots((0, 0, 0))

    def test_send_region_rejects_center(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.send_region_slots((0, 0, 0))

    def test_send_regions_are_interior(self, small_grid):
        interior = set(small_grid.interior_slots.tolist())
        for d in NEIGHBOR_DIRECTIONS:
            assert set(small_grid.send_region_slots(d).tolist()) <= interior

    def test_region_sizes(self, small_grid):
        # face region along +x: g * n1 * n2 bricks
        assert small_grid.region_num_bricks((1, 0, 0)) == 1 * 3 * 2
        assert small_grid.region_num_bricks((0, 1, 0)) == 4 * 1 * 2
        assert small_grid.region_num_bricks((1, 1, 0)) == 1 * 1 * 2
        assert small_grid.region_num_bricks((1, 1, 1)) == 1

    def test_region_bytes(self, small_grid):
        d = (1, 0, 0)
        expected = 6 * 64 * 8
        assert small_grid.region_num_bytes(d) == expected

    def test_send_and_ghost_region_sizes_match(self, small_grid):
        for d in NEIGHBOR_DIRECTIONS:
            assert len(small_grid.send_region_slots(d)) == len(
                small_grid.ghost_region_slots(d)
            )

    def test_send_region_matches_neighbor_ghost_geometry(self, small_grid):
        # sender's region for +d has the brick count of the ghost
        # region for -d (what the neighbour receives)
        for d in NEIGHBOR_DIRECTIONS:
            opp = tuple(-c for c in d)
            assert small_grid.region_num_bricks(d) == len(
                small_grid.ghost_region_slots(opp)
            )


class TestPeriodicWrap:
    def test_wrap_covers_all_ghosts(self, small_grid):
        ghost, src = small_grid.periodic_wrap_pairs
        assert sorted(ghost.tolist()) == small_grid.ghost_slots.tolist()
        interior = set(small_grid.interior_slots.tolist())
        assert set(src.tolist()) <= interior

    def test_wrap_coordinates(self, small_grid):
        ghost, src = small_grid.periodic_wrap_pairs
        n = np.asarray(small_grid.shape_bricks)
        g = small_grid.ghost_bricks
        for gs, ss in zip(ghost[:20], src[:20]):
            gl = small_grid.slot_to_grid[gs] - g
            sl = small_grid.slot_to_grid[ss] - g
            assert np.array_equal(np.mod(gl, n), sl)


@settings(max_examples=25, deadline=None)
@given(
    n0=st.integers(1, 4),
    n1=st.integers(1, 4),
    n2=st.integers(1, 4),
    b=st.sampled_from([1, 2, 4]),
    ordering=st.sampled_from(["lexicographic", "surface-major"]),
)
def test_grid_invariants_property(n0, n1, n2, b, ordering):
    """Slot maps are bijections and regions stay in range for any shape."""
    g = BrickGrid((n0, n1, n2), b, ghost_bricks=1, ordering=ordering)
    assert g.num_slots == (n0 + 2) * (n1 + 2) * (n2 + 2)
    # bijection: grid_to_slot holds each slot exactly once
    flat = np.sort(g.grid_to_slot.reshape(-1))
    assert np.array_equal(flat, np.arange(g.num_slots))
    # ghost regions tile the shell
    total_ghost = sum(len(g.ghost_region_slots(d)) for d in NEIGHBOR_DIRECTIONS)
    assert total_ghost == g.num_slots - g.num_interior
    # adjacency values in range
    adj = g.adjacency
    assert adj.min() >= 0 and adj.max() < g.num_slots
