"""Alternative smoothers: correctness and CA bookkeeping."""

import numpy as np
import pytest

from repro.gmg import (
    ChebyshevSmoother,
    GMGSolver,
    JacobiSmoother,
    RedBlackGaussSeidelSmoother,
    SMOOTHERS,
    SolverConfig,
    SORSmoother,
    discrete_solution,
    make_smoother,
)
from repro.gmg.level import Level
from repro.gmg.problem import rhs_field

BASE = dict(global_cells=32, num_levels=3, brick_dim=4,
            max_smooths=8, bottom_smooths=40)


def residual_norm(level: Level) -> float:
    from tests.conftest import reference_apply_op

    c = level.constants
    x, b = level.x.to_ijk(), level.b.to_ijk()
    return float(np.abs(b - reference_apply_op(x, c.alpha, c.beta)).max())


@pytest.fixture
def level(rng):
    lv = Level(0, (16, 16, 16), 4, h=1 / 16)
    lv.b.set_interior(rhs_field((16, 16, 16), 1 / 16))
    lv.x.set_interior(rng.random((16, 16, 16)) * 0.01)
    for f in lv.fields().values():
        f.fill_ghost_periodic()
    return lv


class TestRegistry:
    def test_all_registered(self):
        assert set(SMOOTHERS) == {"jacobi", "gsrb", "sor", "chebyshev"}

    def test_make_smoother(self):
        assert isinstance(make_smoother("gsrb"), RedBlackGaussSeidelSmoother)
        with pytest.raises(ValueError, match="unknown smoother"):
            make_smoother("ilu")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            JacobiSmoother(omega=0.0)
        with pytest.raises(ValueError):
            SORSmoother(omega=2.0)
        with pytest.raises(ValueError):
            ChebyshevSmoother(degree=0)
        with pytest.raises(ValueError):
            ChebyshevSmoother(alpha_ratio=0.5)

    def test_ghost_consumption_declarations(self):
        assert JacobiSmoother().ghost_cells_per_iteration == 1
        assert RedBlackGaussSeidelSmoother().ghost_cells_per_iteration == 2
        assert SORSmoother().ghost_cells_per_iteration == 2
        assert ChebyshevSmoother(degree=3).ghost_cells_per_iteration == 3


class TestSingleLevelBehaviour:
    @pytest.mark.parametrize("name", ["jacobi", "gsrb", "sor", "chebyshev"])
    def test_each_smoother_reduces_residual(self, level, name, rng):
        sm = make_smoother(name)
        r0 = residual_norm(level)
        for _ in range(4):
            for f in level.fields().values():
                f.fill_ghost_periodic()
            sm.iterate(level, with_residual=False, recorder=None)
        assert residual_norm(level) < 0.7 * r0

    def test_gsrb_converges_faster_than_jacobi(self, rng):
        results = {}
        for name in ("jacobi", "gsrb"):
            lv = Level(0, (16, 16, 16), 4, h=1 / 16)
            lv.b.set_interior(rhs_field((16, 16, 16), 1 / 16))
            for f in lv.fields().values():
                f.fill_ghost_periodic()
            sm = make_smoother(name)
            for _ in range(10):
                for f in lv.fields().values():
                    f.fill_ghost_periodic()
                sm.iterate(lv, with_residual=False, recorder=None)
            results[name] = residual_norm(lv)
        assert results["gsrb"] < results["jacobi"]

    def test_residual_convention_is_preupdate(self, level):
        """with_residual writes r = b - A x_pre for every smoother."""
        from tests.conftest import reference_apply_op

        for name in ("jacobi", "gsrb", "chebyshev"):
            lv = Level(0, (16, 16, 16), 4, h=1 / 16)
            lv.b.set_interior(level.b.to_ijk())
            lv.x.set_interior(level.x.to_ijk())
            for f in lv.fields().values():
                f.fill_ghost_periodic()
            c = lv.constants
            expected = lv.b.to_ijk() - reference_apply_op(
                lv.x.to_ijk(), c.alpha, c.beta
            )
            make_smoother(name).iterate(lv, with_residual=True, recorder=None)
            np.testing.assert_allclose(lv.r.to_ijk(), expected, atol=1e-12)

    def test_jacobi_omega_half_matches_paper_gamma(self, level):
        """omega=0.5 must be bit-identical to the level's h^2/12 path."""
        sm = JacobiSmoother(omega=0.5)
        assert sm._constants(level)["gamma"] == level.constants.gamma


class TestFullSolves:
    @pytest.mark.parametrize("name", ["gsrb", "sor", "chebyshev"])
    def test_solver_converges_with_each_smoother(self, name):
        solver = GMGSolver(SolverConfig(**BASE, smoother=name))
        result = solver.solve()
        assert result.converged
        exact = discrete_solution((32, 32, 32), 1 / 32)
        assert np.abs(solver.solution() - exact).max() < 1e-12

    def test_gsrb_distributed_matches_serial(self):
        serial = GMGSolver(SolverConfig(**BASE, smoother="gsrb"))
        serial.solve()
        dist = GMGSolver(SolverConfig(**BASE, smoother="gsrb",
                                      rank_dims=(2, 1, 1)))
        dist.solve()
        np.testing.assert_array_equal(serial.solution(), dist.solution())

    def test_gsrb_better_convergence_factor(self):
        jac = GMGSolver(SolverConfig(**BASE)).solve()
        gs = GMGSolver(SolverConfig(**BASE, smoother="gsrb")).solve()
        assert gs.convergence_factor < jac.convergence_factor

    def test_colored_smoother_doubles_exchanges(self):
        """GSRB consumes 2 halo cells/iteration, halving the CA budget."""
        jac = GMGSolver(SolverConfig(**BASE))
        gs = GMGSolver(SolverConfig(**BASE, smoother="gsrb"))
        assert gs.vcycle.iterations_per_exchange(0) == (
            jac.vcycle.iterations_per_exchange(0) // 2
        )
        assert gs.vcycle.exchanges_per_visit(0) > jac.vcycle.exchanges_per_visit(0)

    def test_chebyshev_degree_exceeding_ghost_rejected(self):
        with pytest.raises(ValueError, match="halo cells"):
            GMGSolver(SolverConfig(
                **BASE, smoother="chebyshev",
                smoother_options=(("degree", 5),),
            ))

    def test_unknown_smoother_rejected_in_config(self):
        with pytest.raises(ValueError, match="unknown smoother"):
            SolverConfig(**BASE, smoother="ilu")


class TestColorMaskCache:
    """The chequerboard masks are cached per *grid object*, weakly.

    Regression: an ``id()``-keyed cache can alias a recycled id onto a
    new, differently-shaped grid once the original is garbage-collected,
    serving masks of the wrong shape; a ``WeakKeyDictionary`` keyed by
    the grid itself cannot, and also drops entries with dead grids.
    """

    def test_masks_cached_per_grid(self, level):
        sm = RedBlackGaussSeidelSmoother()
        red1, black1 = sm._color_masks(level)
        red2, black2 = sm._color_masks(level)
        assert red1 is red2 and black1 is black2
        assert red1.shape == level.x.data.shape
        np.testing.assert_array_equal(red1, ~black1)

    def test_new_grid_never_sees_stale_masks(self, rng):
        """Churn through many short-lived levels of different shapes:
        every one must get masks of its own shape, even when ids are
        recycled by the allocator."""
        import gc

        sm = RedBlackGaussSeidelSmoother()
        for n in (8, 16, 8, 12, 8, 16):
            lv = Level(0, (n, n, n), 4, h=1 / n)
            red, _ = sm._color_masks(lv)
            assert red.shape == lv.x.data.shape, n
            del lv
            gc.collect()

    def test_cache_does_not_pin_dead_grids(self):
        import gc

        sm = RedBlackGaussSeidelSmoother()
        lv = Level(0, (8, 8, 8), 4, h=1 / 8)
        sm._color_masks(lv)
        assert len(sm._masks) == 1
        del lv
        gc.collect()
        assert len(sm._masks) == 0
