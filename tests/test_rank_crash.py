"""Rank-crash fault tolerance: buddy checkpointing, ULFM-style repair.

Acceptance contract (ISSUE 6): without crash specs the resilient path
stays bit-identical to the plain path (buddy checkpoints included); a
seeded single-rank crash is detected, the communicator repaired, the
dead rank's bricks adopted from its buddy replica, and the solve
converges to the *same* residual tolerance as the fault-free reference
with ``recovered_ranks`` naming the victim; a crash that outlives its
buddy replica falls back to a deterministic global restart; an
unrecoverable crash storm degrades to ``failed_faults`` without
hanging; and plan validation rejects impossible crash specs up front.
"""

import numpy as np
import pytest

from repro.comm.simmpi import RankDeadError, SimComm
from repro.comm.topology import CartTopology
from repro.faults import (
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    STATUS_FAILED_FAULTS,
)
from repro.gmg import GMGSolver, SolverConfig
from repro.obs.metrics import solve_metrics


def small_config(**overrides) -> SolverConfig:
    base = dict(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=6,
        bottom_smooths=20,
        rank_dims=(2, 1, 1),
    )
    base.update(overrides)
    return SolverConfig(**base)


def crash_plan(*specs) -> FaultPlan:
    return FaultPlan(specs=tuple(specs))


@pytest.fixture(scope="module")
def reference():
    """Fault-free solve of the shared small config."""
    solver = GMGSolver(small_config())
    result = solver.solve()
    return result, solver.solution()


class TestPlanValidation:
    def test_rank_crash_requires_rank(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("rank_crash")

    def test_rejects_negative_vcycle(self):
        with pytest.raises(ValueError, match="vcycle"):
            FaultSpec("rank_crash", rank=0, vcycle=-1)

    def test_rejects_negative_rank(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("drop", rank=-2)

    def test_rejects_src_on_rank_crash(self):
        with pytest.raises(ValueError, match="src"):
            FaultSpec("rank_crash", rank=1, src=0)

    def test_rejects_direction_on_rank_crash(self):
        with pytest.raises(ValueError, match="direction"):
            FaultSpec("rank_crash", rank=1, direction=(1, 0, 0))

    def test_solver_rejects_out_of_range_victim(self):
        # the small config has 2 ranks: rank 5 cannot crash
        plan = crash_plan(FaultSpec("rank_crash", rank=5, vcycle=1))
        with pytest.raises(ValueError, match="rank=5 out of range"):
            GMGSolver(small_config(), fault_plan=plan)

    def test_solver_rejects_out_of_range_level(self):
        plan = crash_plan(FaultSpec("rank_crash", rank=0, vcycle=1, level=7))
        with pytest.raises(ValueError, match="level=7 out of range"):
            GMGSolver(small_config(), fault_plan=plan)

    def test_solver_rejects_crash_on_single_rank_solve(self):
        plan = crash_plan(FaultSpec("rank_crash", rank=0, vcycle=1))
        with pytest.raises(ValueError, match=">= 2 ranks"):
            GMGSolver(small_config(rank_dims=(1, 1, 1)), fault_plan=plan)

    def test_message_spec_src_validated_too(self):
        plan = crash_plan(FaultSpec("drop", vcycle=1, level=0, src=9))
        with pytest.raises(ValueError, match="src"):
            GMGSolver(small_config(), fault_plan=plan)


class TestBuddyMapping:
    def test_single_node_falls_back_to_ring(self):
        topo = CartTopology((2, 2, 1), ranks_per_node=4)
        assert [topo.buddy_rank(r) for r in range(4)] == [1, 2, 3, 0]

    def test_multi_node_buddy_is_off_node(self):
        topo = CartTopology((2, 2, 1), ranks_per_node=2)
        for rank in range(4):
            buddy = topo.buddy_rank(rank)
            assert not topo.is_intra_node(rank, buddy)

    def test_single_rank_has_no_buddy(self):
        topo = CartTopology((1, 1, 1))
        with pytest.raises(ValueError, match="at least 2 ranks"):
            topo.buddy_rank(0)


class TestDeadEndpointSemantics:
    def test_dead_peer_raises_on_send_and_receive(self):
        comm = SimComm(2)
        comm.kill(1)
        assert comm.is_dead(1)
        assert comm.dead_ranks() == (1,)
        with pytest.raises(RankDeadError):
            comm.isend(1, 0, tag=0, payload=np.zeros(4))
        with pytest.raises(RankDeadError):
            comm.allreduce_sum([1.0, 2.0])

    def test_agree_dead_is_collective_truth(self):
        comm = SimComm(4)
        comm.kill(2)
        assert comm.agree_dead() == (2,)

    def test_repair_revives_and_purges(self):
        comm = SimComm(2)
        comm.isend(1, 0, tag=0, payload=np.zeros(4))
        comm.kill(1)
        comm.repair(revive=[1])
        assert comm.dead_ranks() == ()
        assert comm.repairs == 1
        comm.assert_drained()  # repair purged the in-flight message


class TestIdentityWithoutCrashes:
    def test_buddy_checkpoints_do_not_perturb_solve(self, reference):
        """Resilience on, no crash specs: bit-identical to the plain
        path even though every checkpoint is shipped to a buddy."""
        ref_result, ref_solution = reference
        solver = GMGSolver(small_config(), resilience=ResilienceConfig())
        result = solver.solve()
        assert result.status == "converged"
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        counts = result.fault_counts
        assert counts["buddy_checkpoint"] == counts["checkpoint"] * 2
        assert result.recorder.injected_faults == 0
        assert result.recorder.detected_faults == 0
        assert result.recovered_ranks == []
        assert result.bytes_restored == 0
        solver.comm.assert_drained()

    def test_buddy_traffic_invisible_to_message_accounting(self, reference):
        """Replica shipping must not contaminate the priced message
        record the perf model and commviz read."""
        ref_result, _ = reference
        solver = GMGSolver(small_config(), resilience=ResilienceConfig())
        result = solver.solve()
        assert len(result.recorder.messages) == len(
            ref_result.recorder.messages
        )


class TestSingleCrashRecovery:
    @pytest.fixture(scope="class")
    def crashed(self):
        plan = crash_plan(FaultSpec("rank_crash", rank=1, vcycle=2))
        solver = GMGSolver(small_config(), fault_plan=plan)
        return solver, solver.solve()

    def test_converges_to_reference_tolerance(self, crashed, reference):
        ref_result, ref_solution = reference
        solver, result = crashed
        assert result.status == "converged"
        assert result.final_residual == ref_result.final_residual
        # buddy restore replays from a coordinated checkpoint, so the
        # recovered solve is bit-identical, not merely tolerable
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)

    def test_reports_recovered_ranks_and_slo_numbers(self, crashed):
        _, result = crashed
        assert result.recovered_ranks == [1]
        assert result.mttr_s > 0
        assert result.bytes_restored > 0
        assert result.cycles_lost >= 1

    def test_event_counts_tell_the_recovery_story(self, crashed):
        solver, result = crashed
        counts = result.fault_counts
        assert counts["inject_rank_crash"] == 1
        assert counts["detect_rank_crash"] == 1
        assert counts["comm_repair"] == 1
        assert counts["buddy_restore"] == 1
        assert counts["rollback"] == 1
        assert "global_restart" not in counts
        assert solver.comm.repairs == 1
        solver.comm.assert_drained()

    def test_recovery_gauges_exported(self, crashed):
        _, result = crashed
        registry = solve_metrics(result.recorder, result=result)
        assert registry.get("recovery.mttr_ms") > 0
        assert registry.get("recovery.bytes_restored") == result.bytes_restored
        assert registry.get("recovery.recovered_ranks") == 1
        assert registry.get("faults.comm_repair") == 1

    def test_level_pinned_crash_strikes_at_exchange(self, reference):
        """A level-pinned spec kills the victim as it enters that
        level's exchange — recovery must still replay bit-identically."""
        ref_result, ref_solution = reference
        plan = crash_plan(FaultSpec("rank_crash", rank=0, vcycle=3, level=1))
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        assert result.recovered_ranks == [0]
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)

    def test_crash_before_first_checkpoint_restarts_globally(
        self, reference
    ):
        """A crash at the initial residual (no checkpoint yet) cannot
        use the buddy rung; the restart rung re-derives the fault-free
        initial state deterministically."""
        ref_result, ref_solution = reference
        plan = crash_plan(FaultSpec("rank_crash", rank=1, vcycle=0))
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        assert result.recovered_ranks == [1]
        assert result.fault_counts["global_restart"] == 1
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)


class TestBuddyPairCrash:
    def test_dead_buddy_pair_falls_back_to_global_restart(self, reference):
        """On 2 ranks each rank holds the other's replica, so a
        simultaneous pair crash invalidates both replicas — the ladder
        must drop to the restart rung and still converge."""
        ref_result, ref_solution = reference
        plan = crash_plan(
            FaultSpec("rank_crash", rank=0, vcycle=2),
            FaultSpec("rank_crash", rank=1, vcycle=2),
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == "converged"
        assert result.recovered_ranks == [0, 1]
        counts = result.fault_counts
        assert counts["global_restart"] == 1
        assert "buddy_restore" not in counts
        assert result.bytes_restored == 0
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)


class TestCrashStorm:
    def test_persistent_crash_exhausts_budget_without_hanging(self):
        plan = crash_plan(
            FaultSpec("rank_crash", rank=1, vcycle_from=1, max_hits=None)
        )
        solver = GMGSolver(small_config(), fault_plan=plan)
        result = solver.solve()  # must return, not raise or hang
        assert result.status == STATUS_FAILED_FAULTS
        assert not result.converged
        assert result.rollbacks == ResilienceConfig().recovery_budget
        assert result.fault_counts["give_up"] == 1

    def test_storm_with_disabled_buddy_also_degrades(self):
        """Without replicas every recovery is a restart; the budget
        still bounds the retry loop."""
        plan = crash_plan(
            FaultSpec("rank_crash", rank=1, vcycle_from=1, max_hits=None)
        )
        res = ResilienceConfig(buddy_checkpoints=False, recovery_budget=2)
        solver = GMGSolver(small_config(), resilience=res, fault_plan=plan)
        result = solver.solve()
        assert result.status == STATUS_FAILED_FAULTS
        assert result.rollbacks == 2
        assert result.fault_counts.get("buddy_checkpoint", 0) == 0


class TestAgglomerationCrash:
    """ISSUE satellite: a rank crash during an ``AgglomerationTransfer``
    gather/scatter must complete from the buddy snapshot or roll back
    cleanly — no hung waitall, no partially staged coarse block."""

    def agg_config(self):
        # level 3 runs on one rank: a level-3 spec strikes exactly at
        # the gather/scatter transfer entry
        return SolverConfig(
            global_cells=32, num_levels=4, brick_dim=4, max_smooths=6,
            bottom_smooths=20, max_vcycles=8, rank_dims=(2, 2, 2),
            agglomerate_threshold=64,
        )

    @pytest.fixture(scope="class")
    def agg_reference(self):
        solver = GMGSolver(self.agg_config())
        result = solver.solve()
        return result, solver.solution()

    @pytest.mark.parametrize("victim", [5, 0])
    def test_crash_at_transfer_recovers_bitwise(self, victim, agg_reference):
        """Kill a gather source (5) and the merge owner (0) in turn."""
        ref_result, ref_solution = agg_reference
        plan = crash_plan(
            FaultSpec("rank_crash", rank=victim, vcycle=1, level=3)
        )
        solver = GMGSolver(self.agg_config(), fault_plan=plan)
        result = solver.solve()
        assert result.status == ref_result.status
        assert result.recovered_ranks == [victim]
        counts = result.fault_counts
        assert counts["detect_rank_crash"] == 1
        assert counts["buddy_restore"] == 1
        # the partially gathered coarse block was never committed: the
        # replayed history is bit-identical to the crash-free solve
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solver.solution(), ref_solution)
        solver.comm.assert_drained()
