"""Level construction and the V-cycle operators."""

import numpy as np
import pytest

from tests.conftest import reference_apply_op
from repro.gmg import operators as ops
from repro.gmg.level import Level, level_brick_dim
from repro.gmg.problem import rhs_field
from repro.instrument import Recorder


class TestLevelBrickDim:
    def test_requested_when_divisible(self):
        assert level_brick_dim(32, 8) == 8

    def test_shrinks_to_fit(self):
        assert level_brick_dim(4, 8) == 4

    def test_falls_back_to_divisor(self):
        assert level_brick_dim(12, 8) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            level_brick_dim(0, 8)


class TestLevel:
    def test_construction(self):
        lv = Level(0, (16, 16, 16), 4, h=1 / 16)
        assert lv.num_points == 4096
        assert lv.ghost_depth_cells == 4
        assert set(lv.fields()) == {"x", "b", "Ax", "r"}

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            Level(0, (10, 10, 10), 4, h=0.1)

    def test_init_zero(self):
        lv = Level(0, (8, 8, 8), 4, h=1 / 8)
        lv.x.fill(3.0)
        lv.init_zero()
        assert not lv.x.data.any()


@pytest.fixture
def level(rng):
    lv = Level(0, (16, 16, 16), 4, h=1 / 16)
    lv.b.set_interior(rhs_field((16, 16, 16), 1 / 16))
    lv.x.set_interior(rng.random((16, 16, 16)))
    for f in lv.fields().values():
        f.fill_ghost_periodic()
    return lv


class TestStencilOperators:
    def test_apply_op_matches_oracle(self, level):
        ops.apply_op(level)
        c = level.constants
        oracle = reference_apply_op(level.x.to_ijk(), c.alpha, c.beta)
        np.testing.assert_allclose(level.Ax.to_ijk(), oracle, rtol=1e-13)

    def test_smooth_reduces_residual(self, level):
        c = level.constants
        b = level.b.to_ijk()

        def res() -> float:
            x = level.x.to_ijk()
            return np.abs(b - reference_apply_op(x, c.alpha, c.beta)).max()

        r0 = res()
        for _ in range(5):
            level.x.fill_ghost_periodic()
            ops.apply_op(level)
            ops.smooth(level)
        assert res() < r0

    def test_smooth_residual_is_preupdate(self, level):
        ops.apply_op(level)
        b, Ax = level.b.to_ijk(), level.Ax.to_ijk()
        ops.smooth_residual(level)
        np.testing.assert_allclose(level.r.to_ijk(), b - Ax, rtol=1e-13)

    def test_residual_kernel(self, level):
        ops.apply_op(level)
        ops.residual(level)
        np.testing.assert_allclose(
            level.r.to_ijk(), level.b.to_ijk() - level.Ax.to_ijk(), rtol=1e-13
        )

    def test_recorder_counts(self, level):
        rec = Recorder()
        ops.apply_op(level, rec)
        ops.smooth_residual(level, rec)
        assert rec.kernel_counts() == {
            (0, "applyOp"): 1,
            (0, "smooth+residual"): 1,
        }
        assert rec.kernel_points()[(0, "applyOp")] == 4096


@pytest.fixture
def level_pair(rng):
    fine = Level(0, (16, 16, 16), 4, h=1 / 16)
    coarse = Level(1, (8, 8, 8), 4, h=2 / 16)
    fine.r.set_interior(rng.random((16, 16, 16)))
    coarse.x.set_interior(rng.random((8, 8, 8)))
    return fine, coarse


class TestInterGridOperators:
    def test_restriction_is_block_average(self, level_pair):
        fine, coarse = level_pair
        ops.restriction(fine, coarse)
        r = fine.r.to_ijk()
        oracle = r.reshape(8, 2, 8, 2, 8, 2).mean(axis=(1, 3, 5))
        np.testing.assert_allclose(coarse.b.to_ijk(), oracle, rtol=1e-14)

    def test_restriction_preserves_constants(self, level_pair):
        fine, coarse = level_pair
        fine.r.set_interior(np.full((16, 16, 16), 2.5))
        ops.restriction(fine, coarse)
        np.testing.assert_allclose(coarse.b.to_ijk(), 2.5)

    def test_interpolation_increments(self, level_pair):
        fine, coarse = level_pair
        fine.x.set_interior(np.zeros((16, 16, 16)))
        ops.interpolation_increment(coarse, fine)
        xc = coarse.x.to_ijk()
        oracle = np.repeat(np.repeat(np.repeat(xc, 2, 0), 2, 1), 2, 2)
        np.testing.assert_allclose(fine.x.to_ijk(), oracle, rtol=1e-14)

    def test_interpolation_adds_to_existing(self, level_pair, rng):
        fine, coarse = level_pair
        base = rng.random((16, 16, 16))
        fine.x.set_interior(base)
        ops.interpolation_increment(coarse, fine)
        xc = coarse.x.to_ijk()
        oracle = base + np.repeat(np.repeat(np.repeat(xc, 2, 0), 2, 1), 2, 2)
        np.testing.assert_allclose(fine.x.to_ijk(), oracle, rtol=1e-14)

    def test_restrict_after_interpolate_is_identity(self, level_pair):
        """R(I(x)) = x for piecewise-constant I and volume-average R."""
        fine, coarse = level_pair
        fine.x.set_interior(np.zeros((16, 16, 16)))
        ops.interpolation_increment(coarse, fine)
        fine.r.set_interior(fine.x.to_ijk())
        ops.restriction(fine, coarse)
        np.testing.assert_allclose(
            coarse.b.to_ijk(), coarse.x.to_ijk(), rtol=1e-14
        )

    def test_dense_fallback_matches_brick_native(self, rng):
        """Mismatched brick dims route through the dense path; results
        must agree with the brick-native path bit-for-bit."""
        data = rng.random((16, 16, 16))
        # brick-native: both levels use 4^3 bricks
        f1, c1 = Level(0, (16,) * 3, 4, 1 / 16), Level(1, (8,) * 3, 4, 1 / 8)
        # fallback: coarse level uses 8^3 bricks (fine 4^3 != coarse 8^3)
        f2, c2 = Level(0, (16,) * 3, 4, 1 / 16), Level(1, (8,) * 3, 8, 1 / 8)
        for f in (f1, f2):
            f.r.set_interior(data)
        ops.restriction(f1, c1)
        ops.restriction(f2, c2)
        np.testing.assert_array_equal(c1.b.to_ijk(), c2.b.to_ijk())

    def test_interpolation_fallback_matches(self, rng):
        coarse_data = rng.random((8, 8, 8))
        f1, c1 = Level(0, (16,) * 3, 4, 1 / 16), Level(1, (8,) * 3, 4, 1 / 8)
        f2, c2 = Level(0, (16,) * 3, 4, 1 / 16), Level(1, (8,) * 3, 8, 1 / 8)
        for c in (c1, c2):
            c.x.set_interior(coarse_data)
        ops.interpolation_increment(c1, f1)
        ops.interpolation_increment(c2, f2)
        np.testing.assert_array_equal(f1.x.to_ijk(), f2.x.to_ijk())

    def test_restriction_needs_no_ghost_data(self, level_pair):
        """The paper's claim: inter-level ops need no neighbour comm."""
        fine, coarse = level_pair
        fine.r.zero_ghost()  # poison-free: ghosts untouched
        ops.restriction(fine, coarse)
        r = fine.r.to_ijk()
        oracle = r.reshape(8, 2, 8, 2, 8, 2).mean(axis=(1, 3, 5))
        np.testing.assert_allclose(coarse.b.to_ijk(), oracle)

    def test_recorder_attribution(self, level_pair):
        fine, coarse = level_pair
        rec = Recorder()
        ops.restriction(fine, coarse, rec)
        ops.interpolation_increment(coarse, fine, rec)
        counts = rec.kernel_counts()
        # both attributed to the finer level, normalised to coarse points
        assert counts == {
            (0, "restriction"): 1,
            (0, "interpolation+increment"): 1,
        }
        assert rec.kernel_points()[(0, "restriction")] == 512
