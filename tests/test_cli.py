"""Command-line interface."""

import pytest

from repro.cli import main


class TestSolveCommand:
    def test_basic_solve(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "maxNormRes" in out

    def test_verify_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--verify"])
        assert rc == 0
        assert "closed-form" in capsys.readouterr().out

    def test_distributed(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--ranks", "2,1,1"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_alternative_components(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--smoother", "gsrb",
                   "--bottom-solver", "fft", "--cycle", "W"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoother=gsrb" in out and "bottom=fft" in out

    def test_nonconvergence_exit_code(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "1"])
        assert rc == 1

    def test_no_ca_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--no-ca"])
        assert rc == 0

    def test_trace_flag_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace_file

        trace = tmp_path / "solve.json"
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {trace}" in out
        counts = validate_chrome_trace_file(trace)
        assert counts["spans"] > 0


class TestProfileCommand:
    def test_profile_prints_breakdown_and_metrics(self, capsys):
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiled solve: 16^3" in out
        assert "(model: Perlmutter)" in out
        assert "sigma:" in out and "| model " in out
        assert "reductions.total" in out

    def test_profile_machine_none(self, capsys):
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--machine", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sigma:" in out and "| model " not in out

    def test_profile_artifacts(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        profile = tmp_path / "profile.json"
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--trace", str(trace),
                   "--json", str(profile)])
        assert rc == 0
        obj = json.loads(profile.read_text())
        assert obj["coverage"] >= 0.95
        assert obj["rows"]
        assert trace.exists()


class TestExperimentCommand:
    @pytest.mark.parametrize(
        "which,needle",
        [
            ("fig4", "HPGMG"),
            ("table2", "smooth+residual"),
            ("table3", "overall Phi = 73%"),
            ("table4", "applyOp"),
            ("table5", "overall Phi = 92%"),
            ("fig7", "potential="),
        ],
    )
    def test_experiment_output(self, capsys, which, needle):
        assert main(["experiment", which]) == 0
        assert needle in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestAutotuneCommand:
    def test_single_machine(self, capsys):
        assert main(["autotune", "Sunspot"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuning on Sunspot" in out
        assert "(worst)" in out

    def test_json_export(self, capsys, tmp_path):
        assert main(["experiment", "table4", "--json", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.json").exists()


class TestValidateCommand:
    def test_all_checks_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "7/7 checks passed" in out
        assert "FAIL" not in out
