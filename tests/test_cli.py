"""Command-line interface."""

import pytest

from repro.cli import main


class TestSolveCommand:
    def test_basic_solve(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "maxNormRes" in out

    def test_verify_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--verify"])
        assert rc == 0
        assert "closed-form" in capsys.readouterr().out

    def test_distributed(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--ranks", "2,1,1"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_alternative_components(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--smoother", "gsrb",
                   "--bottom-solver", "fft", "--cycle", "W"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoother=gsrb" in out and "bottom=fft" in out

    def test_nonconvergence_exit_code(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "1"])
        assert rc == 1

    def test_no_ca_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--no-ca"])
        assert rc == 0


class TestExperimentCommand:
    @pytest.mark.parametrize(
        "which,needle",
        [
            ("fig4", "HPGMG"),
            ("table2", "smooth+residual"),
            ("table3", "overall Phi = 73%"),
            ("table4", "applyOp"),
            ("table5", "overall Phi = 92%"),
            ("fig7", "potential="),
        ],
    )
    def test_experiment_output(self, capsys, which, needle):
        assert main(["experiment", which]) == 0
        assert needle in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestAutotuneCommand:
    def test_single_machine(self, capsys):
        assert main(["autotune", "Sunspot"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuning on Sunspot" in out
        assert "(worst)" in out

    def test_json_export(self, capsys, tmp_path):
        assert main(["experiment", "table4", "--json", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.json").exists()


class TestValidateCommand:
    def test_all_checks_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "7/7 checks passed" in out
        assert "FAIL" not in out
