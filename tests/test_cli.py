"""Command-line interface."""

import pytest

from repro.cli import main


class TestSolveCommand:
    def test_basic_solve(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "maxNormRes" in out

    def test_verify_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--verify"])
        assert rc == 0
        assert "closed-form" in capsys.readouterr().out

    def test_distributed(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--ranks", "2,1,1"])
        assert rc == 0
        assert "2 rank(s)" in capsys.readouterr().out

    def test_alternative_components(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--smoother", "gsrb",
                   "--bottom-solver", "fft", "--cycle", "W"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoother=gsrb" in out and "bottom=fft" in out

    def test_nonconvergence_exit_code(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "1"])
        assert rc == 1

    def test_no_ca_flag(self, capsys):
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--no-ca"])
        assert rc == 0

    def test_trace_flag_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace_file

        trace = tmp_path / "solve.json"
        rc = main(["solve", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {trace}" in out
        counts = validate_chrome_trace_file(trace)
        assert counts["spans"] > 0


class TestProfileCommand:
    def test_profile_prints_breakdown_and_metrics(self, capsys):
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiled solve: 16^3" in out
        assert "(model: Perlmutter)" in out
        assert "sigma:" in out and "| model " in out
        assert "reductions.total" in out

    def test_profile_machine_none(self, capsys):
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--machine", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sigma:" in out and "| model " not in out

    def test_profile_artifacts(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        profile = tmp_path / "profile.json"
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--trace", str(trace),
                   "--json", str(profile)])
        assert rc == 0
        obj = json.loads(profile.read_text())
        assert obj["coverage"] >= 0.95
        assert obj["rows"]
        assert trace.exists()

    def test_min_coverage_flag_relaxes_floor(self, capsys):
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--min-coverage", "10"])
        assert rc == 0

    def test_min_coverage_failure_reports_measured_value(self, capsys):
        """An unreachable floor fails with the measured coverage in the
        message, so the operator sees how far off the run was."""
        rc = main(["profile", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "--min-coverage", "100.5"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "span coverage" in out and "below" in out
        assert "100.5%" in out


class TestCommvizCommand:
    def test_renders_matrix_breakdown_and_critical_path(self, capsys):
        rc = main(["commviz", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "2", "--ranks", "2,2,2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "over 8 ranks" in out
        assert "messages (src -> dst)" in out
        assert "bytes (src -> dst)" in out
        assert "dst7" in out and "src7" in out  # full 8x8 matrix
        assert "per-rank time breakdown" in out
        assert "critical path" in out
        assert "model" in out  # network-model column present
        assert "per-level traffic: l0:" in out

    def test_machine_none_skips_model_column(self, capsys):
        rc = main(["commviz", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "2", "--ranks", "2,1,1",
                   "--machine", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "model" not in out

    def test_single_rank_rejected(self, capsys):
        rc = main(["commviz", "-s", "16", "-l", "2", "--ranks", "1,1,1"])
        assert rc == 2
        assert "distributed" in capsys.readouterr().out

    def test_trace_has_one_pid_per_rank(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace_file
        from repro.obs.chrome_trace import rank_pid

        trace = tmp_path / "ranks.json"
        rc = main(["commviz", "-s", "16", "-l", "2", "--smooths", "6",
                   "--bottom", "20", "-n", "2", "--ranks", "2,1,1",
                   "--trace", str(trace)])
        assert rc == 0
        counts = validate_chrome_trace_file(trace)
        assert counts["pids"] == 3  # global + 2 ranks
        obj = json.loads(trace.read_text())
        pids = {e["pid"] for e in obj["traceEvents"]}
        assert pids == {1, rank_pid(0), rank_pid(1)}


class TestExperimentCommand:
    @pytest.mark.parametrize(
        "which,needle",
        [
            ("fig4", "HPGMG"),
            ("table2", "smooth+residual"),
            ("table3", "overall Phi = 73%"),
            ("table4", "applyOp"),
            ("table5", "overall Phi = 92%"),
            ("fig7", "potential="),
        ],
    )
    def test_experiment_output(self, capsys, which, needle):
        assert main(["experiment", which]) == 0
        assert needle in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestAutotuneCommand:
    def test_single_machine(self, capsys):
        assert main(["autotune", "Sunspot"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuning on Sunspot" in out
        assert "(worst)" in out

    def test_json_export(self, capsys, tmp_path):
        assert main(["experiment", "table4", "--json", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.json").exists()


class TestChaosSweepCommand:
    SMALL = ["--ranks", "2,1,1", "--crash-cycles", "2",
             "--crash-counts", "1", "--checkpoint-intervals", "2"]

    def test_clean_matrix_passes_and_records(self, capsys, tmp_path):
        rc = main(["chaossweep", "--seed", "7", *self.SMALL,
                   "--update", "--ledger", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "recovered 1/1 matrix cells" in out
        assert (tmp_path / "chaos_sweep.jsonl").exists()

    def test_storm_flag_fails_the_gate(self, capsys):
        """The inverted self-test CI leans on: an unrecoverable crash
        must produce a nonzero exit."""
        rc = main(["chaossweep", "--seed", "7", *self.SMALL, "--storm"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "degraded to failed_faults as designed" in out
        assert "gate fails by design" in out

    def test_faultsweep_update_records_ledger_entry(self, capsys, tmp_path):
        rc = main(["faultsweep", "--machine", "none",
                   "--update", "--ledger", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fault_sweep.jsonl").exists()
        out = capsys.readouterr().out
        assert "recorded sweep" in out


class TestValidateCommand:
    def test_all_checks_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "7/7 checks passed" in out
        assert "FAIL" not in out


class TestLoadgenCommand:
    def test_reports_throughput_and_latency(self, capsys):
        rc = main(["loadgen", "--requests", "2", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 request(s)" in out
        assert "solves/sec" in out and "speedup" in out
        assert "p95 latency" in out and "occupancy" in out

    def test_json_report_and_ledger_entry(self, capsys, tmp_path):
        import json

        report = tmp_path / "loadgen.json"
        rc = main(["loadgen", "--requests", "2", "--repeats", "1",
                   "--json", str(report),
                   "--update", "--ledger", str(tmp_path / "ledger")])
        assert rc == 0
        obj = json.loads(report.read_text())
        assert obj["num_requests"] == 2
        assert set(obj["metrics"]) >= {"ms_per_solve", "p50_ms", "p95_ms",
                                       "sequential_ms_per_solve"}
        ledger = tmp_path / "ledger" / "service.loadgen.jsonl"
        entry = json.loads(ledger.read_text().splitlines()[0])
        assert entry["benchmark"] == "service.loadgen"
        assert entry["metrics"]["ms_per_solve"] > 0
        assert "recorded sweep" in capsys.readouterr().out

    def test_min_speedup_gate_trips(self, capsys):
        rc = main(["loadgen", "--requests", "2", "--repeats", "1",
                   "--min-speedup", "1e9"])
        assert rc == 1
        assert "loadgen FAILED" in capsys.readouterr().out

    def test_no_baseline_skips_sequential_pass(self, capsys):
        rc = main(["loadgen", "--requests", "2", "--repeats", "1",
                   "--no-baseline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequential/sec" not in out and "speedup" not in out


class TestServeCommand:
    def test_batch_file_to_results_json(self, capsys, tmp_path):
        import json

        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([
            {"amplitude": 1.3, "request_id": "a"},
            {"amplitude": 0.7, "request_id": "b"},
        ]))
        out_path = tmp_path / "results.json"
        rc = main(["serve", str(batch), "--out", str(out_path)])
        assert rc == 0
        obj = json.loads(out_path.read_text())
        assert obj["num_cohorts"] == 1
        assert [r["request_id"] for r in obj["results"]] == ["a", "b"]
        for row in obj["results"]:
            assert row["converged"]
            assert row["final_residual"] <= 1e-10
            assert row["latency_ms"] > 0

    def test_config_overrides_and_stdout(self, capsys, tmp_path):
        import json

        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({
            "config": {"num_levels": 2},
            "requests": [{"amplitude": 1.1}],
        }))
        rc = main(["serve", str(batch)])
        assert rc == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["results"][0]["request_id"] == "req-0"
        assert obj["results"][0]["converged"]

    def test_empty_batch_rejected(self, capsys, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text("[]")
        assert main(["serve", str(batch)]) == 1
