"""BrickedArray: round-trips, ghost handling, reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bricks import BrickGrid, BrickedArray


class TestConstruction:
    def test_zeros(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        assert f.data.shape == (small_grid.num_slots, 4, 4, 4)
        assert not f.data.any()

    def test_from_existing_data(self, small_grid):
        data = np.ones((small_grid.num_slots, 4, 4, 4))
        f = BrickedArray(small_grid, data)
        assert f.data is data

    def test_rejects_wrong_shape(self, small_grid):
        with pytest.raises(ValueError):
            BrickedArray(small_grid, np.zeros((2, 4, 4, 4)))

    def test_rejects_wrong_dtype(self, small_grid):
        data = np.zeros((small_grid.num_slots, 4, 4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            BrickedArray(small_grid, data)


class TestRoundTrip:
    def test_ijk_roundtrip(self, random_field):
        field, dense = random_field
        assert np.array_equal(field.to_ijk(), dense)

    def test_set_interior_rejects_wrong_shape(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        with pytest.raises(ValueError):
            f.set_interior(np.zeros((4, 4, 4)))

    def test_brick_cells_are_contiguous(self, small_grid, rng):
        """The defining layout property: one brick = one memory run."""
        dense = rng.random(small_grid.shape_cells)
        f = BrickedArray.from_ijk(small_grid, dense)
        s = small_grid.slot_of((1, 1, 1))
        brick = f.data[s]
        assert brick.flags["C_CONTIGUOUS"]
        assert np.array_equal(brick, dense[4:8, 4:8, 4:8])

    def test_roundtrip_is_ordering_independent(self, rng):
        dense = rng.random((8, 8, 8))
        a = BrickedArray.from_ijk(BrickGrid((2, 2, 2), 4, 1, "lexicographic"), dense)
        b = BrickedArray.from_ijk(BrickGrid((2, 2, 2), 4, 1, "surface-major"), dense)
        assert np.array_equal(a.to_ijk(), b.to_ijk())


class TestGhost:
    def test_periodic_fill_wraps(self, random_field):
        field, dense = random_field
        field.fill_ghost_periodic()
        g = field.grid
        # ghost brick at (-1, 0, 0) should equal interior brick (3, 0, 0)
        ghost = field.data[g.slot_of((-1, 0, 0))]
        assert np.array_equal(ghost, dense[12:16, 0:4, 0:4])

    def test_zero_ghost(self, random_field):
        field, dense = random_field
        field.fill_ghost_periodic()
        field.zero_ghost()
        assert not field.data[field.grid.ghost_slots].any()
        assert np.array_equal(field.to_ijk(), dense)


class TestWholeField:
    def test_copy_is_deep(self, random_field):
        field, _ = random_field
        c = field.copy()
        c.data += 1.0
        assert not np.array_equal(c.data, field.data)
        assert c.grid is field.grid

    def test_fill(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        f.fill(3.5)
        assert (f.data == 3.5).all()

    def test_zero_interior_keeps_ghost(self, random_field):
        field, _ = random_field
        field.fill_ghost_periodic()
        ghost_before = field.data[field.grid.ghost_slots].copy()
        field.zero_interior()
        assert not field.data[field.grid.interior_slots].any()
        assert np.array_equal(field.data[field.grid.ghost_slots], ghost_before)

    def test_max_abs_interior_ignores_ghost(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        f.data[small_grid.ghost_slots] = 99.0
        f.data[small_grid.interior_slots[0], 0, 0, 0] = -2.5
        assert f.max_abs_interior() == 2.5

    def test_mean_interior(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        f.fill(2.0)
        assert f.mean_interior() == pytest.approx(2.0)

    def test_nbytes_interior(self, small_grid):
        f = BrickedArray.zeros(small_grid)
        assert f.nbytes_interior == 24 * 64 * 8


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 3),
    b=st.sampled_from([2, 3, 4]),
    ordering=st.sampled_from(["lexicographic", "surface-major"]),
    seed=st.integers(0, 2**31),
)
def test_roundtrip_property(n, b, ordering, seed):
    grid = BrickGrid((n, n, n), b, ghost_bricks=1, ordering=ordering)
    dense = np.random.default_rng(seed).random(grid.shape_cells)
    assert np.array_equal(BrickedArray.from_ijk(grid, dense).to_ijk(), dense)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    b=st.sampled_from([2, 3, 4]),
    r=st.integers(1, 2),
    ordering=st.sampled_from(["lexicographic", "surface-major"]),
    seed=st.integers(0, 2**31),
)
def test_deep_shell_periodic_matches_dense_roll(n, b, r, ordering, seed):
    """Resident-shell periodic fill: every interior brick's extended
    block — faces, edges, AND corners of the shell, at any supported
    ``halo_radius`` — must equal the dense periodic neighbourhood.

    The reference is a plain ``np.roll``: rolling the dense field by
    ``r - origin`` puts the brick's wrapped ``(B + 2r)³`` neighbourhood
    at the front of the array (tiled, so a shell deeper than the domain
    wraps more than once — the 1-brick-per-axis case).  Agglomerated
    gathers reassemble coarse levels through ``set_interior`` and rely
    on this shell being exact before the first smoothing kernel reads
    it.
    """
    from repro.bricks.halo_plan import refresh_shell

    grid = BrickGrid((n, n, n), b, ghost_bricks=1, ordering=ordering)
    dense = np.random.default_rng(seed).random(grid.shape_cells)
    field = BrickedArray.zeros(grid, halo_radius=r)
    field.set_interior(dense)
    field.fill_ghost_periodic()
    refresh_shell(field)
    for bi in range(n):
        for bj in range(n):
            for bk in range(n):
                rolled = np.roll(
                    dense,
                    shift=(r - bi * b, r - bj * b, r - bk * b),
                    axis=(0, 1, 2),
                )
                expected = np.tile(rolled, (3, 3, 3))[
                    : b + 2 * r, : b + 2 * r, : b + 2 * r
                ]
                got = field.ext_data[grid.slot_of((bi, bj, bk))]
                np.testing.assert_array_equal(
                    got, expected,
                    err_msg=f"brick {(bi, bj, bk)} shell wrong "
                            f"(B={b}, r={r}, n={n}, ordering={ordering})",
                )
