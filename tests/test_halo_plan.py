"""Halo plans: flat-index gathers must match the direction-loop oracle."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray, gather_extended
from repro.bricks.halo_plan import (
    HaloPlan,
    OffsetGatherPlan,
    gather_planned,
    offset_plan_for,
    plan_for,
    refresh_shell,
)


@pytest.fixture
def halo_field(small_grid, rng):
    dense = rng.random(small_grid.shape_cells)
    f = BrickedArray.from_ijk(small_grid, dense)
    f.fill_ghost_periodic()
    return f


class TestHaloPlanGather:
    @pytest.mark.parametrize("radius", [0, 1, 2])
    def test_matches_gather_extended(self, halo_field, radius):
        expected = gather_extended(halo_field, radius)
        got = gather_planned(halo_field, radius)
        assert np.array_equal(got, expected)

    def test_strided_source(self, halo_field):
        """Per-rank views of stacked storage are strided — the plan must
        take the fancy-index path and still agree with the oracle."""
        stacked = np.concatenate([halo_field.data, halo_field.data])
        view = stacked[: halo_field.grid.num_slots]
        strided = BrickedArray(halo_field.grid, stacked[halo_field.grid.num_slots :])
        assert not view.flags.c_contiguous or view.base is stacked
        plan = plan_for(halo_field.grid, 1)
        assert np.array_equal(
            plan.gather(strided.data), gather_extended(halo_field, 1)
        )

    def test_out_buffer_reused(self, halo_field):
        E = halo_field.grid.brick_dim + 2
        buf = np.empty((halo_field.grid.num_slots, E, E, E))
        got = plan_for(halo_field.grid, 1).gather(halo_field.data, out=buf)
        assert got is buf

    def test_bad_out_shape_rejected(self, halo_field):
        with pytest.raises(ValueError):
            plan_for(halo_field.grid, 1).gather(
                halo_field.data, out=np.empty((2, 6, 6, 6))
            )

    def test_bad_radius_rejected(self, small_grid):
        with pytest.raises(ValueError):
            HaloPlan(small_grid, -1)
        with pytest.raises(ValueError):
            HaloPlan(small_grid, small_grid.brick_dim + 1)

    def test_plan_cached_per_grid(self, small_grid):
        assert plan_for(small_grid, 1) is plan_for(small_grid, 1)
        assert plan_for(small_grid, 1) is not plan_for(small_grid, 2)


class TestRefreshShell:
    def test_refresh_equals_full_gather(self, small_grid, rng):
        dense = rng.random(small_grid.shape_cells)
        f = BrickedArray(small_grid, halo_radius=1)
        f.set_interior(dense)
        f.fill_ghost_periodic()
        refresh_shell(f)
        packed = BrickedArray.from_ijk(small_grid, dense)
        packed.fill_ghost_periodic()
        assert np.array_equal(f.ext_data, gather_extended(packed, 1))

    def test_interior_untouched(self, small_grid, rng):
        f = BrickedArray(small_grid, halo_radius=1)
        f.set_interior(rng.random(small_grid.shape_cells))
        f.fill_ghost_periodic()
        before = f.data.copy()
        refresh_shell(f)
        assert np.array_equal(f.data, before)

    def test_requires_resident_field(self, halo_field, small_grid):
        with pytest.raises(ValueError):
            plan_for(small_grid, 1).refresh_shell(halo_field)


class TestOffsetGatherPlan:
    OFFSETS = (
        (0, 0, 0),
        (1, 0, 0),
        (-1, 0, 0),
        (0, 1, 0),
        (0, -1, 0),
        (0, 0, 1),
        (0, 0, -1),
        (1, -1, 0),  # an edge read, beyond the 7-point set
    )

    def test_matches_extended_slices(self, halo_field):
        """Each offset block must equal the corresponding slice of the
        full extended gather — the bit-identity contract of the
        offset-mode kernels."""
        B = halo_field.grid.brick_dim
        r = 1
        E = gather_extended(halo_field, r)
        block = OffsetGatherPlan(halo_field.grid, self.OFFSETS).gather(
            halo_field.data
        )
        for k, (dx, dy, dz) in enumerate(self.OFFSETS):
            sl = tuple(slice(r + d, r + d + B) for d in (dx, dy, dz))
            assert np.array_equal(block[k], E[(slice(None),) + sl]), (dx, dy, dz)

    def test_resident_source_matches_packed(self, small_grid, rng):
        """A halo_radius>0 plan sourcing the extended storage reads the
        same values the packed plan reads — neighbour interiors are the
        canonical data either way."""
        dense = rng.random(small_grid.shape_cells)
        resident = BrickedArray(small_grid, halo_radius=1)
        resident.set_interior(dense)
        resident.fill_ghost_periodic()
        packed = BrickedArray.from_ijk(small_grid, dense)
        packed.fill_ghost_periodic()
        offs = self.OFFSETS[:7]
        got = OffsetGatherPlan(small_grid, offs, halo_radius=1).gather(
            resident.ext_data
        )
        expected = OffsetGatherPlan(small_grid, offs).gather(packed.data)
        assert np.array_equal(got, expected)

    def test_out_buffer(self, halo_field):
        plan = OffsetGatherPlan(halo_field.grid, ((1, 0, 0), (0, 0, -1)))
        B = halo_field.grid.brick_dim
        buf = np.empty((2, halo_field.grid.num_slots, B, B, B))
        got = plan.gather(halo_field.data, out=buf)
        assert got is buf
        assert np.array_equal(buf, plan.gather(halo_field.data))

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            OffsetGatherPlan(small_grid, ())
        with pytest.raises(ValueError):
            OffsetGatherPlan(small_grid, ((small_grid.brick_dim + 1, 0, 0),))
        with pytest.raises(ValueError):
            OffsetGatherPlan(small_grid, ((1, 0, 0),), halo_radius=-1)


class TestOffsetPlanCache:
    def test_congruent_grids_share_plans(self):
        """Plans are keyed by grid *geometry*: two separately built but
        congruent grids (fresh hierarchies per solve) hit one entry."""
        a = BrickGrid((2, 2, 2), 4)
        b = BrickGrid((2, 2, 2), 4)
        assert a is not b
        assert a.geometry_key == b.geometry_key
        offs = ((1, 0, 0), (0, 1, 0))
        assert offset_plan_for(a, offs) is offset_plan_for(b, offs)

    def test_distinct_geometry_distinct_plans(self):
        a = BrickGrid((2, 2, 2), 4)
        b = BrickGrid((2, 2, 2), 4, ordering="lexicographic")
        offs = ((1, 0, 0),)
        assert offset_plan_for(a, offs) is not offset_plan_for(b, offs)

    def test_radius_in_key(self):
        g = BrickGrid((2, 2, 2), 4)
        offs = ((1, 0, 0),)
        assert offset_plan_for(g, offs, 0) is not offset_plan_for(g, offs, 1)
