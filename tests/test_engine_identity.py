"""Engine identity suite: every engine configuration is bit-identical.

The execution engine (halo-resident storage, kernel fusion, cross-rank
batching — :mod:`repro.gmg.engine`) only changes *how* kernels execute,
never *what* they compute: for any solver configuration, the committed
residual history and the assembled solution must be byte-equal to the
seed path's.  This suite pins that contract across smoothers, cycle
types, rank decompositions, bottom solvers and active fault plans.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, ResilienceConfig
from repro.gmg import GMGSolver, SolverConfig

ENGINE_MODES = {
    "halo": dict(halo_resident=True),
    "fuse": dict(fuse_kernels=True),
    "batch": dict(batch_ranks=True),
    "halo+fuse": dict(halo_resident=True, fuse_kernels=True),
    "full": dict(halo_resident=True, fuse_kernels=True, batch_ranks=True),
}


def small_config(**overrides) -> SolverConfig:
    base = dict(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=4,
        bottom_smooths=12,
        max_vcycles=6,
    )
    base.update(overrides)
    return SolverConfig(**base)


def run(config: SolverConfig, **solver_kwargs):
    solver = GMGSolver(config, **solver_kwargs)
    result = solver.solve()
    return result, solver.solution()


def assert_identical(config_kwargs, engine_flags, **solver_kwargs):
    ref_result, ref_solution = run(small_config(**config_kwargs), **solver_kwargs)
    result, solution = run(
        small_config(**config_kwargs, **engine_flags), **solver_kwargs
    )
    assert result.status == ref_result.status
    assert result.num_vcycles == ref_result.num_vcycles
    assert result.residual_history == ref_result.residual_history
    np.testing.assert_array_equal(solution, ref_solution)


@pytest.mark.parametrize("mode", ENGINE_MODES)
class TestEngineModes:
    def test_default_problem(self, mode):
        assert_identical({}, ENGINE_MODES[mode])

    def test_multi_rank(self, mode):
        assert_identical({"rank_dims": (2, 1, 1)}, ENGINE_MODES[mode])


@pytest.mark.parametrize("smoother", ["jacobi", "gsrb", "sor", "chebyshev"])
@pytest.mark.parametrize("cycle", ["V", "W", "F"])
class TestFullEngineAcrossAlgorithms:
    def test_smoother_cycle(self, smoother, cycle):
        assert_identical(
            {"smoother": smoother, "cycle": cycle}, ENGINE_MODES["full"]
        )


class TestFullEngineVariants:
    @pytest.mark.parametrize("bottom", ["relaxation", "cg", "fft"])
    def test_bottom_solvers(self, bottom):
        assert_identical({"bottom_solver": bottom}, ENGINE_MODES["full"])

    def test_three_levels(self):
        assert_identical(
            {"global_cells": 32, "num_levels": 3}, ENGINE_MODES["full"]
        )

    def test_fp32(self):
        assert_identical({"precision": "fp32"}, ENGINE_MODES["full"])

    @pytest.mark.parametrize("boundary", ["dirichlet", "neumann"])
    def test_nonperiodic_boundaries(self, boundary):
        assert_identical({"boundary": boundary}, ENGINE_MODES["full"])

    def test_two_by_two_ranks(self):
        assert_identical({"rank_dims": (2, 2, 1)}, ENGINE_MODES["full"])


class TestEngineUnderFaults:
    """Fault detection, retry and rollback address per-rank fields; the
    engine's stacked storage must alias them transparently, so a faulty
    run recovers to the same history with any engine configuration."""

    @pytest.mark.parametrize("mode", ["halo", "full"])
    def test_recovery_is_identical(self, mode):
        plan = FaultPlan.single("drop", vcycle=1, level=0)
        cfg = {"rank_dims": (2, 1, 1)}
        ref_result, ref_solution = run(small_config(**cfg), fault_plan=plan)
        result, solution = run(
            small_config(**cfg, **ENGINE_MODES[mode]), fault_plan=plan
        )
        assert result.status == ref_result.status
        assert result.residual_history == ref_result.residual_history
        assert result.rollbacks == ref_result.rollbacks
        np.testing.assert_array_equal(solution, ref_solution)

    def test_checkpointed_resilience_identical(self):
        res = ResilienceConfig()
        assert_identical(
            {"rank_dims": (2, 1, 1)}, ENGINE_MODES["full"], resilience=res
        )
