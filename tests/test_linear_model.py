"""The latency/bandwidth model f(x) = x/(alpha + x/beta) and its fit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import (
    LatencyBandwidthFit,
    fit_from_times,
    fit_latency_bandwidth,
    latency_bandwidth_model,
)


class TestModel:
    def test_saturates_at_beta(self):
        f = latency_bandwidth_model(1e12, alpha=1e-6, beta=1e9)
        assert f == pytest.approx(1e9, rel=1e-3)

    def test_latency_bound_regime_is_linear(self):
        """For x << alpha*beta, f(x) ~ x/alpha."""
        f = latency_bandwidth_model(10.0, alpha=1e-3, beta=1e9)
        assert f == pytest.approx(10.0 / 1e-3, rel=1e-2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            latency_bandwidth_model(1.0, alpha=-1.0, beta=1.0)
        with pytest.raises(ValueError):
            latency_bandwidth_model(1.0, alpha=1.0, beta=0.0)

    def test_vectorized(self):
        x = np.array([1e3, 1e6, 1e9])
        f = latency_bandwidth_model(x, 1e-6, 1e9)
        assert f.shape == (3,)
        assert np.all(np.diff(f) > 0)


class TestFit:
    def test_exact_recovery(self):
        x = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        t = 5e-6 + x / 80e9
        fit = fit_from_times(x, t)
        assert fit.alpha == pytest.approx(5e-6, rel=1e-9)
        assert fit.beta == pytest.approx(80e9, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_from_throughput_form(self):
        x = np.array([1e3, 1e4, 1e5, 1e6])
        f = latency_bandwidth_model(x, 2e-5, 10e9)
        fit = fit_latency_bandwidth(x, f)
        assert fit.alpha == pytest.approx(2e-5, rel=1e-9)
        assert fit.beta == pytest.approx(10e9, rel=1e-9)

    def test_noise_robustness(self):
        rng = np.random.default_rng(7)
        x = np.logspace(3, 8, 24)
        t = (1e-5 + x / 50e9) * rng.normal(1.0, 0.02, x.size)
        fit = fit_from_times(x, t)
        assert fit.alpha == pytest.approx(1e-5, rel=0.3)
        assert fit.beta == pytest.approx(50e9, rel=0.1)
        assert fit.r_squared > 0.99

    def test_predictions(self):
        fit = LatencyBandwidthFit(alpha=1e-5, beta=1e9, r_squared=1.0)
        assert fit.time(1e6) == pytest.approx(1e-5 + 1e-3)
        assert fit.throughput(1e9) == pytest.approx(
            latency_bandwidth_model(1e9, 1e-5, 1e9)
        )

    def test_half_rate_size(self):
        """n_1/2: throughput reaches beta/2 at x = alpha*beta."""
        fit = LatencyBandwidthFit(alpha=1e-5, beta=1e9, r_squared=1.0)
        x_half = fit.half_rate_size()
        assert fit.throughput(x_half) == pytest.approx(0.5e9)

    def test_negative_intercept_clamped(self):
        x = np.array([1e6, 2e6, 4e6])
        t = x / 1e9  # alpha exactly zero
        fit = fit_from_times(x, t - 1e-12)  # jitter below zero
        assert fit.alpha >= 0.0

    def test_degenerate_flat_series(self):
        """Pure latency plateau (slope <= 0) falls back gracefully."""
        x = np.array([1e3, 1e4, 1e5])
        t = np.array([1e-5, 1e-5, 1e-5])
        fit = fit_from_times(x, t)
        assert fit.alpha == pytest.approx(1e-5)
        assert fit.beta > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_from_times(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_from_times(np.array([1.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_from_times(np.array([1.0, 2.0]), np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            fit_latency_bandwidth(np.array([1.0, 2.0]), np.array([0.0, 1.0]))


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.floats(1e-7, 1e-3),
    beta=st.floats(1e6, 1e12),
)
def test_fit_recovers_any_parameters(alpha, beta):
    """Property: noiseless data from the model is recovered exactly."""
    x = np.logspace(2, 9, 12)
    t = alpha + x / beta
    fit = fit_from_times(x, t)
    assert fit.alpha == pytest.approx(alpha, rel=1e-6, abs=1e-12)
    assert fit.beta == pytest.approx(beta, rel=1e-6)
