"""Storage-ordering properties: bijection, contiguity, segment counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS, BrickGrid, direction_kind
from repro.bricks.orderings import (
    ORDERINGS,
    contiguous_segments,
    lexicographic_order,
    num_segments,
    surface_major_order,
)


class TestOrderingFunctions:
    @pytest.mark.parametrize("fn", [lexicographic_order, surface_major_order])
    def test_orderings_are_permutations(self, fn):
        order = fn((4, 3, 2), 1)
        assert np.array_equal(np.sort(order), np.arange(6 * 5 * 4))

    def test_lexicographic_is_identity(self):
        order = lexicographic_order((2, 2, 2), 1)
        assert np.array_equal(order, np.arange(64))

    def test_registry_contents(self):
        assert set(ORDERINGS) == {"lexicographic", "surface-major"}


class TestContiguousSegments:
    def test_empty(self):
        assert contiguous_segments(np.array([], dtype=np.int64)) == []

    def test_single_run(self):
        assert contiguous_segments(np.array([3, 4, 5])) == [(3, 6)]

    def test_multiple_runs(self):
        assert contiguous_segments(np.array([1, 2, 5, 7, 8])) == [
            (1, 3),
            (5, 6),
            (7, 9),
        ]

    def test_unsorted_input_ok(self):
        assert contiguous_segments(np.array([5, 3, 4])) == [(3, 6)]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            contiguous_segments(np.array([1, 1, 2]))

    def test_segments_cover_exactly(self):
        slots = np.array([0, 1, 2, 10, 11, 40])
        segs = contiguous_segments(slots)
        covered = [s for a, b in segs for s in range(a, b)]
        assert sorted(covered) == sorted(slots.tolist())


class TestSurfaceMajorContiguity:
    """The communication-optimisation claims of the surface-major order."""

    @pytest.fixture
    def grid(self):
        return BrickGrid((4, 4, 4), 4, ghost_bricks=1, ordering="surface-major")

    def test_every_ghost_region_is_one_segment(self, grid):
        for d in NEIGHBOR_DIRECTIONS:
            assert num_segments(grid, d, "recv") == 1, d

    def test_corner_sends_are_one_segment(self, grid):
        for d in NEIGHBOR_DIRECTIONS:
            if direction_kind(d) == "corner":
                assert num_segments(grid, d, "send") == 1, d

    def test_lexicographic_ghosts_are_fragmented(self):
        grid = BrickGrid((4, 4, 4), 4, ghost_bricks=1, ordering="lexicographic")
        fragmented = [
            d for d in NEIGHBOR_DIRECTIONS if num_segments(grid, d, "recv") > 1
        ]
        assert len(fragmented) >= 6  # most face/edge regions fragment

    def test_surface_major_has_fewer_send_segments(self):
        sm = BrickGrid((6, 6, 6), 4, ghost_bricks=1, ordering="surface-major")
        lex = BrickGrid((6, 6, 6), 4, ghost_bricks=1, ordering="lexicographic")
        total_sm = sum(num_segments(sm, d, "send") for d in NEIGHBOR_DIRECTIONS)
        total_lex = sum(num_segments(lex, d, "send") for d in NEIGHBOR_DIRECTIONS)
        assert total_sm < total_lex

    def test_num_segments_rejects_bad_kind(self, grid):
        with pytest.raises(ValueError):
            num_segments(grid, (1, 0, 0), "both")


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 5),
    ordering=st.sampled_from(["lexicographic", "surface-major"]),
)
def test_regions_have_expected_total_bricks(n, ordering):
    g = BrickGrid((n, n, n), 2, ghost_bricks=1, ordering=ordering)
    for d in NEIGHBOR_DIRECTIONS:
        nz = sum(1 for c in d if c != 0)
        assert len(g.ghost_region_slots(d)) == n ** (3 - nz)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 6))
def test_surface_major_recv_contiguity_property(n):
    """Unpack-free receives hold for every grid size with n >= 2g."""
    g = BrickGrid((n, n, n), 2, ghost_bricks=1, ordering="surface-major")
    for d in NEIGHBOR_DIRECTIONS:
        assert len(contiguous_segments(g.ghost_region_slots(d))) == 1
