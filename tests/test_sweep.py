"""The declarative sweep orchestrator: config, expansion, execution."""

import json

import pytest

from repro.perf.sweep import (
    SWEEP_SCHEMA_VERSION,
    SweepConfig,
    expand,
    run_sweep,
)

#: a matrix tiny enough to execute in-test: 2 engine modes on a 16^3
#: two-level problem capped at one V-cycle
TINY = dict(
    name="tiny",
    base=dict(
        global_cells=16, num_levels=2, brick_dim=4, max_smooths=2,
        bottom_smooths=4, max_vcycles=1,
    ),
    axes={"engine": ["off", "full"]},
    rounds=2,
    warmup=0,
)


class TestSweepConfig:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            SweepConfig(name="s", axes={"warp_speed": [1, 2]})

    def test_solver_field_axis_accepted(self):
        cfg = SweepConfig(name="s", axes={"brick_dim": [2, 4]})
        assert cfg.axes["brick_dim"] == [2, 4]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepConfig(name="s", axes={})

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepConfig(name="s", axes={"brick_dim": []})

    def test_unsafe_name_rejected(self):
        with pytest.raises(ValueError, match="filesystem-safe"):
            SweepConfig(name="a/b", axes={"brick_dim": [4]})

    def test_baseline_must_be_on_an_axis(self):
        with pytest.raises(ValueError, match="not a declared axis"):
            SweepConfig(
                name="s", axes={"brick_dim": [4]}, baseline={"overlap": True}
            )
        with pytest.raises(ValueError, match="not on axis"):
            SweepConfig(
                name="s", axes={"brick_dim": [4]}, baseline={"brick_dim": 8}
            )

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sweep config keys"):
            SweepConfig.from_dict(
                {"name": "s", "axes": {"brick_dim": [4]}, "color": "red"}
            )

    def test_from_file_round_trip(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(json.dumps({"name": "s", "axes": {"engine": ["off"]}}))
        cfg = SweepConfig.from_file(p)
        assert cfg.name == "s"

    def test_baseline_defaults_to_first_values(self):
        cfg = SweepConfig(
            name="s", axes={"brick_dim": [2, 4], "overlap": [False, True]}
        )
        assert cfg.baseline_axes() == {"brick_dim": 2, "overlap": False}


class TestExpansion:
    def test_cartesian_product(self):
        cfg = SweepConfig(
            name="s",
            axes={"engine": ["off", "full"], "overlap": [False, True]},
        )
        cells = expand(cfg)
        assert len(cells) == 4
        assert [c.label for c in cells] == [
            "engine-off_overlap-off",
            "engine-off_overlap-on",
            "engine-full_overlap-off",
            "engine-full_overlap-on",
        ]

    def test_engine_axis_maps_to_solver_flags(self):
        cfg = SweepConfig(name="s", axes={"engine": ["full"]})
        (cell,) = expand(cfg)
        assert cell.solver_kwargs == dict(
            halo_resident=True, fuse_kernels=True, batch_ranks=True
        )

    def test_unknown_engine_rejected(self):
        cfg = SweepConfig(name="s", axes={"engine": ["turbo"]})
        with pytest.raises(ValueError, match="unknown engine"):
            expand(cfg)

    def test_scenario_fills_only_unpinned_keys(self):
        # tier1 says brick_dim=4; the axis pins 8, and must win
        cfg = SweepConfig(
            name="s",
            base={"scenario": "tier1"},
            axes={"brick_dim": [8]},
        )
        (cell,) = expand(cfg)
        assert cell.solver_kwargs["brick_dim"] == 8
        assert cell.solver_kwargs["global_cells"] == 32

    def test_unknown_scenario_rejected(self):
        cfg = SweepConfig(name="s", axes={"scenario": ["atlantis"]})
        with pytest.raises(ValueError, match="unknown scenario"):
            expand(cfg)

    def test_custom_scenario_table_merges_over_builtins(self):
        cfg = SweepConfig(
            name="s",
            axes={"scenario": ["mine"]},
            scenarios={"mine": {"global_cells": 8, "num_levels": 1}},
        )
        (cell,) = expand(cfg)
        assert cell.solver_kwargs["global_cells"] == 8

    def test_machine_axis_is_not_a_solver_kwarg(self):
        cfg = SweepConfig(
            name="s",
            base={"scenario": "smoke"},
            axes={"machine": ["Perlmutter", None]},
        )
        cells = expand(cfg)
        assert cells[0].machine == "Perlmutter"
        assert cells[1].machine is None
        assert all("machine" not in c.solver_kwargs for c in cells)

    def test_rank_dims_list_becomes_tuple(self):
        cfg = SweepConfig(name="s", axes={"rank_dims": [[2, 1, 1]]})
        (cell,) = expand(cfg)
        assert cell.solver_kwargs["rank_dims"] == (2, 1, 1)

    def test_committed_sweep_configs_expand(self):
        for name in ("smoke", "engine", "overlap", "agglomeration"):
            cfg = SweepConfig.from_file(f"benchmarks/sweeps/{name}.json")
            cells = expand(cfg)
            assert cells, name
            base = cfg.baseline_axes()
            assert any(c.axes == base for c in cells), name


class TestRunSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sweep(SweepConfig(**TINY))

    def test_every_cell_ran_every_round(self, report):
        assert len(report.cells) == 2
        for r in report.cells:
            assert len(r.samples) == TINY["rounds"]
            assert r.stats.count == TINY["rounds"]
            assert r.ok and r.vcycles >= 1

    def test_attribution_covers_non_baseline_values(self, report):
        (effect,) = report.effects
        assert effect.axis == "engine" and effect.value == "full"
        assert effect.baseline_value == "off"
        assert effect.pairs == 1

    def test_json_schema(self, report):
        obj = json.loads(json.dumps(report.to_json()))
        assert obj["schema"] == SWEEP_SCHEMA_VERSION
        assert obj["name"] == "tiny"
        assert len(obj["cells"]) == 2
        for cell in obj["cells"]:
            for key in ("label", "axes", "status", "vcycles",
                        "wallclock_ms"):
                assert key in cell, key
            assert cell["wallclock_ms"]["count"] == TINY["rounds"]
        assert obj["attribution"]
        assert obj["baseline_label"] == "engine-off"

    def test_ledger_entries_one_series_per_cell(self, report):
        entries = report.ledger_entries()
        assert [e.benchmark for e in entries] == [
            "sweep_tiny.engine-off",
            "sweep_tiny.engine-full",
        ]
        for e in entries:
            assert e.source == "sweep"
            assert e.metrics["wallclock_ms"] > 0
            assert e.metrics["wallclock_ms.median"] >= e.metrics["wallclock_ms"]
            assert e.metrics["vcycles"] == 1.0
            assert e.context["sweep"] == "tiny"

    def test_ledger_entry_round_trips(self, report):
        from repro.obs.ledger import LedgerEntry

        entry = report.ledger_entries()[0]
        again = LedgerEntry.from_json(
            json.loads(json.dumps(entry.to_json()))
        )
        assert again == entry

    def test_ascii_render_has_table_and_attribution(self, report):
        text = report.render()
        assert "sweep 'tiny': 2 cells" in text
        assert "engine-off" in text and "engine-full" in text
        assert "axis attribution" in text
        assert "median wallclock by cell index" in text

    def test_html_is_self_contained(self, report):
        html = report.to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "engine-full" in html
        assert "<script" not in html  # no external or inline scripts
        assert "axis attribution" in html


class TestSweepCommand:
    def test_end_to_end_with_update_and_series_gate(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "tiny.json"
        config.write_text(json.dumps(TINY))
        out = tmp_path / "out"
        ledger = tmp_path / "ledger"
        args = ["sweep", "--config", str(config), "--out", str(out),
                "--ledger", str(ledger), "--update"]
        assert main(args) == 0
        stdout = capsys.readouterr().out
        assert "sweep_tiny" in stdout
        for suffix in (".txt", ".json", ".html"):
            assert (out / f"sweep_tiny{suffix}").exists(), suffix
        obj = json.loads((out / "sweep_tiny.json").read_text())
        assert obj["schema"] == SWEEP_SCHEMA_VERSION

        # one more run arms the series; the gate then passes clean and
        # fails under an injected slowdown (the CI inverted self-test)
        assert main(args) == 0
        capsys.readouterr()
        gate = ["perfgate", "--ledger", str(ledger),
                "--series", "sweep_tiny.*", "--window", "1",
                "--noise-scaled"]
        assert main(gate) == 0
        capsys.readouterr()
        assert main(gate + ["--inject-slowdown", "100"]) == 1

    def test_missing_config_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep"])  # --config is required
