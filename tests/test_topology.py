"""Cartesian topology and rank factorisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS
from repro.comm.topology import CartTopology, factor_ranks


class TestCoordinates:
    def test_roundtrip(self):
        topo = CartTopology((2, 3, 4))
        for rank in range(topo.size):
            assert topo.rank_of(topo.coords_of(rank)) == rank

    def test_row_major_layout(self):
        topo = CartTopology((2, 2, 2))
        assert topo.coords_of(0) == (0, 0, 0)
        assert topo.coords_of(1) == (0, 0, 1)
        assert topo.coords_of(7) == (1, 1, 1)

    def test_rank_out_of_range(self):
        topo = CartTopology((2, 2, 2))
        with pytest.raises(ValueError):
            topo.coords_of(8)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            CartTopology((0, 2, 2))
        with pytest.raises(ValueError):
            CartTopology((2, 2, 2), ranks_per_node=0)


class TestNeighbors:
    def test_periodic_wrap(self):
        topo = CartTopology((2, 2, 2))
        assert topo.neighbor(0, (-1, 0, 0)) == topo.rank_of((1, 0, 0))

    def test_26_neighbors(self):
        topo = CartTopology((3, 3, 3))
        nbs = topo.neighbors(13)  # centre rank
        assert len(nbs) == 26
        assert 13 not in nbs.values()

    def test_single_rank_all_neighbors_self(self):
        topo = CartTopology((1, 1, 1))
        assert set(topo.neighbors(0).values()) == {0}

    def test_neighbor_reciprocity(self):
        topo = CartTopology((2, 3, 2))
        for rank in range(topo.size):
            for d in NEIGHBOR_DIRECTIONS:
                nb = topo.neighbor(rank, d)
                back = tuple(-c for c in d)
                assert topo.neighbor(nb, back) == rank


class TestNodes:
    def test_node_assignment(self):
        topo = CartTopology((2, 2, 2), ranks_per_node=4)
        assert topo.num_nodes == 2
        assert topo.node_of(0) == 0
        assert topo.node_of(3) == 0
        assert topo.node_of(4) == 1

    def test_intra_node(self):
        topo = CartTopology((2, 2, 2), ranks_per_node=4)
        assert topo.is_intra_node(0, 3)
        assert not topo.is_intra_node(3, 4)

    def test_remote_fraction_one_rank_per_node(self):
        topo = CartTopology((2, 2, 2), ranks_per_node=1)
        assert topo.remote_neighbor_fraction(0) == 1.0

    def test_remote_fraction_all_on_one_node(self):
        topo = CartTopology((2, 2, 2), ranks_per_node=8)
        assert topo.remote_neighbor_fraction(0) == 0.0

    def test_subdomain_origin(self):
        topo = CartTopology((2, 2, 2))
        assert topo.subdomain_origin(7, (16, 16, 16)) == (16, 16, 16)

    def test_direction_kind_passthrough(self):
        assert CartTopology((1, 1, 1)).direction_kind((1, 0, 0)) == "face"


class TestFactorRanks:
    @pytest.mark.parametrize(
        "size,expected",
        [(1, (1, 1, 1)), (8, (2, 2, 2)), (64, (4, 4, 4)), (512, (8, 8, 8))],
    )
    def test_perfect_cubes(self, size, expected):
        assert factor_ranks(size) == expected

    def test_non_cube(self):
        dims = factor_ranks(12)
        assert dims[0] * dims[1] * dims[2] == 12
        assert dims == (3, 2, 2)

    def test_prime(self):
        assert factor_ranks(7) == (7, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_ranks(0)

    @settings(max_examples=50, deadline=None)
    @given(size=st.integers(1, 4096))
    def test_product_property(self, size):
        d = factor_ranks(size)
        assert d[0] * d[1] * d[2] == size
        assert d[0] >= d[1] >= d[2] >= 1
