"""The model problem's analytic structure (Section IV-C)."""

import numpy as np
import pytest

from tests.conftest import reference_apply_op
from repro.gmg.problem import (
    LevelConstants,
    continuum_solution,
    discrete_operator_eigenvalue,
    discrete_solution,
    rhs_field,
)


class TestLevelConstants:
    def test_paper_formulas(self):
        c = LevelConstants.for_spacing(0.25)
        assert c.alpha == pytest.approx(-6.0 / 0.0625)
        assert c.beta == pytest.approx(1.0 / 0.0625)
        assert c.gamma == pytest.approx(0.0625 / 12.0)

    def test_gamma_is_half_damped_jacobi(self):
        """gamma = h^2/12 equals omega * 1/|alpha| with omega = 1/2."""
        c = LevelConstants.for_spacing(0.1)
        assert c.gamma == pytest.approx(0.5 / abs(c.alpha))

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            LevelConstants.for_spacing(0.0)

    def test_as_dict_keys(self):
        assert set(LevelConstants.for_spacing(1.0).as_dict()) == {
            "alpha",
            "beta",
            "gamma",
        }


class TestRhs:
    def test_zero_mean(self):
        b = rhs_field((16, 16, 16), 1 / 16)
        assert abs(b.mean()) < 1e-14

    def test_separable_product(self):
        n, h = 8, 1 / 8
        b = rhs_field((n, n, n), h)
        x = (np.arange(n) + 0.5) * h
        s = np.sin(2 * np.pi * x)
        oracle = s[:, None, None] * s[None, :, None] * s[None, None, :]
        np.testing.assert_allclose(b, oracle)

    def test_origin_offsets_tile_the_domain(self):
        full = rhs_field((8, 8, 8), 1 / 8)
        part = rhs_field((4, 8, 8), 1 / 8, origin=(4, 0, 0))
        np.testing.assert_array_equal(part, full[4:, :, :])

    def test_max_amplitude_near_one(self):
        b = rhs_field((32, 32, 32), 1 / 32)
        assert 0.9 < np.abs(b).max() <= 1.0


class TestDiscreteSolution:
    def test_eigenvalue_identity(self):
        """A b = lambda b for the product-of-sines mode (the key oracle)."""
        n, h = 16, 1 / 16
        b = rhs_field((n, n, n), h)
        c = LevelConstants.for_spacing(h)
        Ab = reference_apply_op(b, c.alpha, c.beta)
        lam = discrete_operator_eigenvalue(h)
        np.testing.assert_allclose(Ab, lam * b, rtol=1e-10, atol=1e-12)

    def test_discrete_solution_satisfies_system(self):
        n, h = 16, 1 / 16
        x = discrete_solution((n, n, n), h)
        b = rhs_field((n, n, n), h)
        c = LevelConstants.for_spacing(h)
        Ax = reference_apply_op(x, c.alpha, c.beta)
        np.testing.assert_allclose(Ax, b, rtol=1e-10, atol=1e-12)

    def test_discrete_solution_zero_mean(self):
        x = discrete_solution((16, 16, 16), 1 / 16)
        assert abs(x.mean()) < 1e-14

    def test_second_order_convergence_to_continuum(self):
        """|discrete - continuum| = O(h^2)."""
        errs = []
        for n in (16, 32, 64):
            h = 1.0 / n
            d = discrete_solution((n, n, n), h)
            u = continuum_solution((n, n, n), h)
            errs.append(np.abs(d - u).max())
        rate1 = np.log2(errs[0] / errs[1])
        rate2 = np.log2(errs[1] / errs[2])
        assert rate1 == pytest.approx(2.0, abs=0.2)
        assert rate2 == pytest.approx(2.0, abs=0.2)

    def test_eigenvalue_approaches_continuum(self):
        """lambda -> -12 pi^2 as h -> 0."""
        assert discrete_operator_eigenvalue(1 / 256) == pytest.approx(
            -12 * np.pi**2, rel=1e-3
        )
