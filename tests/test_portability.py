"""Performance-portability metric (Pennycook Phi)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiments import (
    table3_portability_roofline,
    table5_portability_ai,
)
from repro.perf import (
    efficiency_table_phi,
    harmonic_mean,
    performance_portability,
)


class TestHarmonicMean:
    def test_empty_is_zero(self):
        assert harmonic_mean([]) == 0.0

    def test_zero_value_is_zero(self):
        assert harmonic_mean([0.5, 0.0, 0.9]) == 0.0

    def test_identical_values(self):
        assert harmonic_mean([0.7, 0.7, 0.7]) == pytest.approx(0.7)

    def test_known_value(self):
        assert harmonic_mean([1.0, 0.5]) == pytest.approx(2 / 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([0.5, -0.1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8))
    def test_bounded_by_min_and_max(self, vals):
        hm = harmonic_mean(vals)
        assert min(vals) - 1e-12 <= hm <= max(vals) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8))
    def test_below_arithmetic_mean(self, vals):
        assert harmonic_mean(vals) <= sum(vals) / len(vals) + 1e-12


class TestPhi:
    def test_unsupported_platform_zeroes_phi(self):
        assert performance_portability({"a": 0.9, "b": None}) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            performance_portability({"a": 1.2})

    def test_matches_pennycook_definition(self):
        effs = {"a": 0.9, "b": 0.6, "c": 0.8}
        expected = 3 / (1 / 0.9 + 1 / 0.6 + 1 / 0.8)
        assert performance_portability(effs) == pytest.approx(expected)

    def test_table_aggregation(self):
        table = {"op1": {"a": 0.8, "b": 0.8}, "op2": {"a": 0.4, "b": 0.4}}
        per_op, overall = efficiency_table_phi(table)
        assert per_op["op1"] == pytest.approx(0.8)
        assert per_op["op2"] == pytest.approx(0.4)
        assert overall == pytest.approx(harmonic_mean([0.8, 0.4]))


class TestPaperTables:
    def test_table3_overall_meets_claim(self):
        """Paper: Phi of 73% across platforms and programming models."""
        result = table3_portability_roofline()
        assert result.overall_phi == pytest.approx(0.73, abs=0.01)

    def test_table3_per_op_values(self):
        """Spot-check the per-op harmonic means printed in Table III."""
        per_op = table3_portability_roofline().per_op_phi
        assert per_op["applyOp"] == pytest.approx(0.76, abs=0.01)
        assert per_op["smooth"] == pytest.approx(0.80, abs=0.01)
        assert per_op["smooth+residual"] == pytest.approx(0.83, abs=0.01)
        assert per_op["restriction"] == pytest.approx(0.76, abs=0.01)
        assert per_op["interpolation+increment"] == pytest.approx(0.55, abs=0.01)

    def test_table5_overall_meets_claim(self):
        """Paper: ~92% of the infinite-cache bound."""
        result = table5_portability_ai()
        assert result.overall_phi >= 0.90

    def test_table5_per_op_values(self):
        per_op = table5_portability_ai().per_op_phi
        assert per_op["applyOp"] == pytest.approx(0.90, abs=0.01)
        assert per_op["smooth"] == pytest.approx(0.97, abs=0.01)
        assert per_op["restriction"] == pytest.approx(0.94, abs=0.01)

    def test_interp_is_the_weakest_op(self):
        """The paper singles out interpolation+increment on MI250X."""
        result = table3_portability_roofline()
        weakest = min(result.per_op_phi, key=result.per_op_phi.get)
        assert weakest == "interpolation+increment"
        assert result.efficiencies["interpolation+increment"]["Frontier"] == 0.42
