"""Coarse-level agglomeration: plan geometry, in-solver identity,
message reduction, engine interplay, and gather/scatter fault recovery."""

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.gmg import AgglomerationPlan, GMGSolver, SolverConfig
from repro.obs.metrics import solve_metrics


def config_8rank(**overrides):
    """32^3 over 2x2x2 ranks, 4 levels: level 3 is 2^3 cells per rank —
    deep in latency territory, the agglomeration target."""
    base = dict(
        global_cells=32, num_levels=4, brick_dim=4, max_smooths=6,
        bottom_smooths=20, max_vcycles=8, rank_dims=(2, 2, 2),
    )
    base.update(overrides)
    return SolverConfig(**base)


class TestAgglomerationPlan:
    def test_no_agglomeration_above_threshold(self):
        plan = AgglomerationPlan((2, 2, 2), 32, 4, threshold_points=1)
        assert not plan.any_agglomerated
        assert plan.active_dims == [(2, 2, 2)] * 4

    def test_coarsest_level_merges_to_one_rank(self):
        plan = AgglomerationPlan((2, 2, 2), 32, 4, threshold_points=64)
        assert plan.active_dims[:3] == [(2, 2, 2)] * 3
        assert plan.active_dims[3] == (1, 1, 1)
        assert plan.is_agglomerated(3) and plan.transition_at(3)
        assert not plan.transition_at(2)
        # the merged level is 8x larger than the per-rank level it replaces
        assert plan.level_cells(3) == (4, 4, 4)

    def test_level_zero_never_agglomerated(self):
        plan = AgglomerationPlan((2, 2, 2), 8, 2, threshold_points=10**9)
        assert plan.active_dims[0] == (2, 2, 2)
        assert not plan.is_agglomerated(0)

    def test_multi_step_plan_is_nested(self):
        plan = AgglomerationPlan((4, 4, 4), 16, 3, threshold_points=64)
        assert plan.active_dims == [(4, 4, 4), (2, 2, 2), (1, 1, 1)]
        # nested: each level's active ranks are a subset of the previous
        prev = set(plan.active_ranks(0))
        for lev in range(1, 3):
            cur = set(plan.active_ranks(lev))
            assert cur <= prev
            prev = cur

    def test_odd_dims_stop_halving(self):
        plan = AgglomerationPlan((3, 1, 1), 12, 2, threshold_points=10**9)
        assert plan.active_dims[1] == (3, 1, 1)  # 3 is odd: nothing to halve

    def test_active_ranks_keep_their_corner(self):
        plan = AgglomerationPlan((2, 2, 2), 32, 4, threshold_points=64)
        assert plan.active_ranks(3) == [0]
        assert plan.active_ranks(2) == list(range(8))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold_points"):
            AgglomerationPlan((2, 2, 2), 32, 4, threshold_points=0)


class TestConfigValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="agglomerate_threshold"):
            config_8rank(agglomerate_threshold=0)

    def test_incompatible_with_global_bottom_solvers(self):
        for bottom in ("cg", "fft"):
            with pytest.raises(ValueError, match="agglomerated"):
                config_8rank(agglomerate_threshold=64, bottom_solver=bottom)

    def test_single_rank_runs_without_agglomerator(self):
        solver = GMGSolver(SolverConfig(
            global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
            bottom_smooths=20, agglomerate_threshold=64,
        ))
        assert solver.agglomerator is None
        assert solver.solve().converged

    def test_tiny_threshold_leaves_seed_schedule(self):
        solver = GMGSolver(config_8rank(agglomerate_threshold=1))
        assert solver.agglomerator is None


class TestInSolverIdentity:
    """The acceptance property: agglomeration changes the message
    schedule, never a single committed float."""

    def test_history_and_solution_bit_identical(self):
        off = GMGSolver(config_8rank())
        r_off = off.solve()
        on = GMGSolver(config_8rank(agglomerate_threshold=64))
        assert on.agglomerator is not None
        r_on = on.solve()
        assert r_on.residual_history == r_off.residual_history
        assert np.array_equal(on.solution(), off.solution())

    def test_identity_with_batched_engine(self):
        off = GMGSolver(config_8rank())
        r_off = off.solve()
        on = GMGSolver(config_8rank(
            agglomerate_threshold=64, batch_ranks=True, halo_resident=True,
        ))
        r_on = on.solve()
        assert r_on.residual_history == r_off.residual_history
        assert np.array_equal(on.solution(), off.solution())

    def test_identity_with_dirichlet_boundary(self):
        off = GMGSolver(config_8rank(boundary="dirichlet"))
        r_off = off.solve()
        on = GMGSolver(config_8rank(
            boundary="dirichlet", agglomerate_threshold=64,
        ))
        r_on = on.solve()
        assert r_on.residual_history == r_off.residual_history
        assert np.array_equal(on.solution(), off.solution())

    def test_identity_across_two_transitions(self):
        base = dict(
            global_cells=16, num_levels=3, brick_dim=4, max_smooths=6,
            bottom_smooths=10, max_vcycles=2, rank_dims=(4, 4, 4),
        )
        off = GMGSolver(SolverConfig(**base))
        r_off = off.solve()
        on = GMGSolver(SolverConfig(**base, agglomerate_threshold=64))
        plan = on.agglomerator.plan
        assert plan.active_dims == [(4, 4, 4), (2, 2, 2), (1, 1, 1)]
        assert plan.transition_at(1) and plan.transition_at(2)
        r_on = on.solve()
        assert r_on.residual_history == r_off.residual_history
        assert np.array_equal(on.solution(), off.solution())


class TestCommunicationReduction:
    """The point of the feature: fewer exchanges, far fewer messages,
    on the agglomerated level — with identical kernel work."""

    def test_fewer_exchanges_and_messages_at_merged_level(self):
        off = GMGSolver(config_8rank())
        off.solve()
        on = GMGSolver(config_8rank(agglomerate_threshold=64))
        on.solve()
        c_off = solve_metrics(off.recorder).snapshot()["counters"]
        c_on = solve_metrics(
            on.recorder, agglomerator=on.agglomerator
        ).snapshot()["counters"]
        # merged bricks are larger -> deeper halo budget -> half the
        # exchanges per visit; one active rank -> 26 local wraps plus
        # one gather/scatter pair replace 8 ranks x 26 wire messages
        assert c_on["exchanges.level3"] < c_off["exchanges.level3"]
        assert c_on["messages.level3.count"] < c_off["messages.level3.count"] / 8
        # the fine levels are untouched
        for lev in range(3):
            assert c_on[f"messages.level{lev}.count"] == (
                c_off[f"messages.level{lev}.count"]
            )
        # identical numerical work: same points touched per kernel
        for key, val in c_off.items():
            if key.startswith("kernel_points."):
                assert c_on[key] == val, key

    def test_active_rank_gauges(self):
        on = GMGSolver(config_8rank(agglomerate_threshold=64))
        on.solve()
        snap = solve_metrics(
            on.recorder, agglomerator=on.agglomerator
        ).snapshot()
        assert snap["gauges"]["agglomeration.level3.active_ranks"] == 1
        assert snap["gauges"]["agglomeration.level0.active_ranks"] == 8
        assert snap["gauges"]["agglomeration.level3.points_per_rank"] == 64
        assert snap["gauges"]["agglomeration.threshold_points"] == 64

    def test_gather_and_scatter_are_priced(self):
        on = GMGSolver(config_8rank(agglomerate_threshold=64))
        result = on.solve()
        kinds = {ev.direction_kind for ev in on.recorder.messages}
        assert {"gather", "scatter"} <= kinds
        gathers = [
            ev for ev in on.recorder.messages if ev.direction_kind == "gather"
        ]
        # 8 sources per transition visit, one visit per V-cycle
        assert len(gathers) == 8 * result.num_vcycles
        # payload: (2, 2, 2, 2) cells of x and b in fp64
        assert all(ev.nbytes == 2 * 8 * 8 for ev in gathers)


class TestTransferFaultRecovery:
    """Satellite 5: the gather/scatter path detects, retries and
    recovers from injected wire faults exactly like halo traffic."""

    def clean_history(self):
        solver = GMGSolver(config_8rank(agglomerate_threshold=64))
        return solver.solve().residual_history

    def run_with(self, plan):
        solver = GMGSolver(
            config_8rank(agglomerate_threshold=64), fault_plan=plan
        )
        return solver, solver.solve()

    def test_dropped_gather_is_retransmitted(self):
        # level 3 has one active rank: its only wire messages are the
        # gather/scatter transfers, so a level-3 spec targets exactly them
        solver, result = self.run_with(
            FaultPlan.single("drop", vcycle=1, level=3)
        )
        assert result.status == "max_vcycles"
        assert result.fault_counts["detect_drop"] >= 1
        assert result.fault_counts["retransmit"] >= 1
        assert result.residual_history == self.clean_history()

    def test_corrupted_gather_is_detected_and_retried(self):
        spec = FaultSpec("corrupt", vcycle=1, level=3, src=1, rank=0)
        solver, result = self.run_with(FaultPlan(specs=(spec,)))
        assert result.fault_counts["detect_corrupt"] >= 1
        assert result.fault_counts["retransmit"] >= 1
        assert result.residual_history == self.clean_history()

    def test_dropped_scatter_is_recovered(self):
        # owner (global rank 0) -> source rank 5: only the scatter
        # message matches this (src, rank) pin at level 3
        spec = FaultSpec("drop", vcycle=2, level=3, src=0, rank=5)
        solver, result = self.run_with(FaultPlan(specs=(spec,)))
        assert result.fault_counts["detect_drop"] >= 1
        assert result.fault_counts["retransmit"] >= 1
        assert result.residual_history == self.clean_history()

    def test_duplicated_transfer_is_drained(self):
        solver, result = self.run_with(
            FaultPlan.single("duplicate", vcycle=1, level=3)
        )
        assert result.fault_counts["detect_duplicate"] >= 1
        assert result.residual_history == self.clean_history()
        solver.comm.assert_drained()

    def test_direction_pinned_spec_never_matches_transfers(self):
        # a direction predicate describes halo geometry; transfer
        # messages have none and must pass through untouched
        spec = FaultSpec(
            "drop", vcycle=1, level=3, direction=(1, 0, 0), max_hits=None
        )
        solver, result = self.run_with(FaultPlan(specs=(spec,)))
        assert result.fault_counts.get("detect_drop", 0) == 0
        assert result.residual_history == self.clean_history()

    def test_persistent_transfer_fault_degrades_gracefully(self):
        solver, result = self.run_with(
            FaultPlan.single("drop", level=3, max_hits=None)
        )
        assert result.status == "failed_faults"
