"""The kernel library's Table IV characteristics."""

import pytest

from repro.dsl import OPERATOR_INFO, theoretical_ai_table
from repro.dsl.library import VCYCLE_OPERATIONS


class TestOperatorInfo:
    def test_all_five_operations_present(self):
        assert set(VCYCLE_OPERATIONS) <= set(OPERATOR_INFO)

    def test_apply_op_matches_paper_exactly(self):
        info = OPERATOR_INFO["applyOp"]
        assert info.flops_per_point == 8
        assert info.bytes_per_point == 16
        assert info.arithmetic_intensity == pytest.approx(0.50)

    def test_smooth_matches_paper_exactly(self):
        info = OPERATOR_INFO["smooth"]
        assert info.arithmetic_intensity == pytest.approx(0.125)

    def test_restriction_traffic(self):
        info = OPERATOR_INFO["restriction"]
        # 8 fine reads + 1 coarse write per coarse point
        assert info.bytes_per_point == 72
        assert info.arithmetic_intensity == pytest.approx(0.111, abs=1e-3)

    def test_interpolation_traffic(self):
        info = OPERATOR_INFO["interpolation+increment"]
        # 1 coarse read + 8 fine reads + 8 fine writes per coarse point
        assert info.bytes_per_point == 136
        assert info.arithmetic_intensity == pytest.approx(0.059, abs=1e-3)

    def test_halo_flags(self):
        assert OPERATOR_INFO["applyOp"].has_halo
        assert not OPERATOR_INFO["smooth"].has_halo
        assert not OPERATOR_INFO["restriction"].has_halo

    def test_table_iv_within_counting_convention_tolerance(self):
        """Every AI is within 0.03 FLOP/byte of the paper's Table IV.

        smooth+residual differs by exactly one flop of counting
        convention (5/40 = 0.125 vs the paper's 0.15); everything else
        agrees to rounding.
        """
        for op, (ours, paper) in theoretical_ai_table().items():
            assert abs(ours - paper) <= 0.03, op

    def test_exact_agreement_except_smooth_residual(self):
        for op, (ours, paper) in theoretical_ai_table().items():
            if op == "smooth+residual":
                continue
            assert abs(ours - paper) <= 0.005, op

    def test_all_memory_bound_ai_below_one(self):
        for info in OPERATOR_INFO.values():
            assert info.arithmetic_intensity < 1.0
