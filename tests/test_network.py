"""Network timing model: staging, protocols, contention, collectives."""

import pytest

from repro.machines import FRONTIER, PERLMUTTER, SUNSPOT
from repro.machines.network import (
    allreduce_time,
    effective_inter_node_bandwidth,
    exchange_time,
    message_overhead,
    message_time,
    nic_share,
    scale_bandwidth_factor,
    scale_latency_factor,
)

MB = 1 << 20


class TestMessageTime:
    def test_monotone_in_size(self):
        for m in (PERLMUTTER, FRONTIER, SUNSPOT):
            assert message_time(m, 2 * MB) > message_time(m, MB)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            message_time(PERLMUTTER, -1)

    def test_frontier_fastest_large_messages(self):
        """Paper Fig 6: Frontier has the highest sustained bandwidth."""
        t = {m.name: message_time(m, 64 * MB, ranks_per_node=1)
             for m in (PERLMUTTER, FRONTIER, SUNSPOT)}
        assert t["Frontier"] < t["Perlmutter"] < t["Sunspot"]

    def test_frontier_lowest_overhead(self):
        """Paper Fig 6: Frontier has the lowest latency (hw matching)."""
        o = {m.name: message_overhead(m, 8) for m in (PERLMUTTER, FRONTIER, SUNSPOT)}
        assert o["Frontier"] < o["Perlmutter"] < o["Sunspot"]

    def test_intra_node_cheaper_than_inter(self):
        for m in (PERLMUTTER, FRONTIER):
            assert message_time(m, MB, intra_node=True) < message_time(m, MB)

    def test_sustained_bandwidth_targets(self):
        """One-rank-per-node effective rates reproduce Fig 6's plateaus:
        ~16 GB/s Frontier, ~14 GB/s Perlmutter, ~7 GB/s Sunspot."""
        assert effective_inter_node_bandwidth(FRONTIER, 1) == pytest.approx(16.0)
        assert effective_inter_node_bandwidth(PERLMUTTER, 1) == pytest.approx(14.0)
        assert effective_inter_node_bandwidth(SUNSPOT, 1) == pytest.approx(7.5, abs=0.8)

    def test_host_staging_is_the_sunspot_penalty(self):
        """Sunspot's rate is fabric-limited only because of staging."""
        from dataclasses import replace

        aware = replace(SUNSPOT, gpu_aware_mpi=True)
        assert effective_inter_node_bandwidth(aware, 1) == pytest.approx(14.0)

    def test_nic_share(self):
        assert nic_share(PERLMUTTER) == 1.0  # 4 NICs / 4 ranks
        assert nic_share(FRONTIER) == 0.5  # 4 NICs / 8 GCD ranks
        assert nic_share(SUNSPOT) == pytest.approx(8 / 12)
        assert nic_share(FRONTIER, ranks_per_node=1) == 1.0


class TestContention:
    def test_latency_grows_with_nodes(self):
        assert scale_latency_factor(PERLMUTTER, 128) > scale_latency_factor(
            PERLMUTTER, 2
        )

    def test_bandwidth_baseline_at_8_nodes(self):
        assert scale_bandwidth_factor(PERLMUTTER, 8) == 1.0
        assert scale_bandwidth_factor(PERLMUTTER, 2) == 1.0

    def test_bandwidth_decays_beyond_baseline(self):
        assert scale_bandwidth_factor(PERLMUTTER, 128) < 1.0

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            scale_latency_factor(PERLMUTTER, 0)
        with pytest.raises(ValueError):
            scale_bandwidth_factor(PERLMUTTER, 0)


class TestExchangeTime:
    def test_remote_messages_serialize(self):
        one = exchange_time(PERLMUTTER, [MB])
        two = exchange_time(PERLMUTTER, [MB, MB])
        assert two > one * 1.9

    def test_local_overlaps_with_remote(self):
        t_remote_only = exchange_time(PERLMUTTER, [8 * MB], [])
        t_with_local = exchange_time(PERLMUTTER, [8 * MB], [MB])
        assert t_with_local == t_remote_only  # local rides under the NIC time

    def test_local_dominates_when_remote_empty(self):
        t = exchange_time(PERLMUTTER, [], [MB])
        assert t == message_time(PERLMUTTER, MB, intra_node=True)


class TestAllreduce:
    def test_single_rank_free(self):
        assert allreduce_time(PERLMUTTER, 1) == 0.0

    def test_grows_logarithmically(self):
        t64 = allreduce_time(PERLMUTTER, 64)
        t128 = allreduce_time(PERLMUTTER, 128)
        t4096 = allreduce_time(PERLMUTTER, 4096)
        assert t128 > t64
        assert (t4096 - t64) == pytest.approx(t64, rel=0.05)  # 12 vs 6 hops

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            allreduce_time(PERLMUTTER, 0)
