"""Ghost-brick exchange: distributed halos must match the periodic oracle."""

import numpy as np
import pytest

from repro.bricks import BrickGrid, BrickedArray
from repro.comm import CartTopology, HaloExchange, LocalPeriodicExchange, SimComm
from repro.gmg.problem import rhs_field
from repro.instrument import Recorder


def make_rank_fields(topology, grid, global_dense):
    """Split a global dense array into per-rank bricked fields."""
    cells = grid.shape_cells
    fields = []
    for rank in range(topology.size):
        o = topology.subdomain_origin(rank, cells)
        sub = global_dense[
            o[0] : o[0] + cells[0], o[1] : o[1] + cells[1], o[2] : o[2] + cells[2]
        ]
        fields.append(BrickedArray.from_ijk(grid, sub))
    return fields


def check_ghosts_against_global(topology, grid, fields, global_dense):
    """Every ghost brick must hold the right global (periodic) data."""
    cells = grid.shape_cells
    B = grid.brick_dim
    N = global_dense.shape
    for rank, field in enumerate(fields):
        o = topology.subdomain_origin(rank, cells)
        for slot in grid.ghost_slots[::5]:  # sample for speed
            lg = grid.slot_to_grid[slot] - grid.ghost_bricks
            idx = [
                np.mod(np.arange(o[d] + lg[d] * B, o[d] + (lg[d] + 1) * B), N[d])
                for d in range(3)
            ]
            expected = global_dense[np.ix_(*idx)]
            assert np.array_equal(field.data[slot], expected), (rank, tuple(lg))


class TestLocalPeriodicExchange:
    def test_fills_ghosts(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        dense = rng.random((8, 8, 8))
        field = BrickedArray.from_ijk(grid, dense)
        topo = CartTopology((1, 1, 1))
        LocalPeriodicExchange(grid).exchange(0, [[field]])
        check_ghosts_against_global(topo, grid, [field], dense)

    def test_records_events(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        rec = Recorder()
        field = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        LocalPeriodicExchange(grid, rec).exchange(3, [[field]])
        assert rec.exchange_counts() == {3: 1}
        assert rec.message_counts_by_level() == {3: 26}
        assert all(ev.self_message for ev in rec.messages)

    def test_rejects_multiple_ranks(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        f = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        with pytest.raises(ValueError):
            LocalPeriodicExchange(grid).exchange(0, [[f], [f]])

    def test_rejects_foreign_grid(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        other = BrickGrid((2, 2, 2), 4)
        f = BrickedArray.zeros(other)
        with pytest.raises(ValueError):
            LocalPeriodicExchange(grid).exchange(0, [[f]])


class TestHaloExchange:
    @pytest.mark.parametrize("dims", [(2, 1, 1), (2, 2, 1), (2, 2, 2), (1, 3, 1)])
    def test_distributed_ghosts_match_global(self, rng, dims, ordering):
        grid = BrickGrid((2, 2, 2), 4, ordering=ordering)
        topo = CartTopology(dims)
        N = tuple(8 * d for d in dims)
        global_dense = rng.random(N)
        fields = make_rank_fields(topo, grid, global_dense)
        comm = SimComm(topo.size)
        HaloExchange(grid, topo, comm).exchange(0, [[f] for f in fields])
        check_ghosts_against_global(topo, grid, fields, global_dense)
        comm.assert_drained()

    def test_single_rank_equals_periodic_wrap(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        dense = rng.random((8, 8, 8))
        via_wrap = BrickedArray.from_ijk(grid, dense)
        via_wrap.fill_ghost_periodic()
        via_comm = BrickedArray.from_ijk(grid, dense)
        topo = CartTopology((1, 1, 1))
        HaloExchange(grid, topo, SimComm(1)).exchange(0, [[via_comm]])
        assert np.array_equal(via_comm.data, via_wrap.data)

    def test_aggregated_fields_share_messages(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        comm = SimComm(2)
        rec = Recorder()
        ex = HaloExchange(grid, topo, comm, rec)
        dense = rng.random((16, 8, 8))
        xs = make_rank_fields(topo, grid, dense)
        bs = make_rank_fields(topo, grid, dense + 1.0)
        ex.exchange(0, [[x, b] for x, b in zip(xs, bs)])
        # 26 messages per rank regardless of field count (aggregation)
        assert rec.message_counts_by_level() == {0: 52}
        check_ghosts_against_global(topo, grid, xs, dense)
        check_ghosts_against_global(topo, grid, bs, dense + 1.0)

    def test_unpack_free_flag_tracks_ordering(self):
        topo = CartTopology((2, 1, 1))
        comm = SimComm(2)
        sm = BrickGrid((4, 4, 4), 4, ordering="surface-major")
        lex = BrickGrid((4, 4, 4), 4, ordering="lexicographic")
        assert HaloExchange(sm, topo, comm).recv_is_unpack_free
        assert not HaloExchange(lex, topo, comm).recv_is_unpack_free

    def test_size_mismatch_rejected(self):
        grid = BrickGrid((2, 2, 2), 4)
        with pytest.raises(ValueError):
            HaloExchange(grid, CartTopology((2, 1, 1)), SimComm(3))

    def test_wrong_rank_count_rejected(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        ex = HaloExchange(grid, topo, SimComm(2))
        f = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        with pytest.raises(ValueError):
            ex.exchange(0, [[f]])

    def test_mismatched_field_counts_rejected(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        ex = HaloExchange(grid, topo, SimComm(2))
        f = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        g = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        with pytest.raises(ValueError):
            ex.exchange(0, [[f, g], [f]])

    def test_incompatible_field_grid_rejected(self, rng):
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        ex = HaloExchange(grid, topo, SimComm(2))
        wrong = BrickedArray.zeros(BrickGrid((4, 4, 4), 2))
        ok = BrickedArray.from_ijk(grid, rng.random((8, 8, 8)))
        with pytest.raises(ValueError, match="incompatible"):
            ex.exchange(0, [[ok], [wrong]])

    def test_ghost_shape_mismatch_names_rank_direction_level(self, rng):
        from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS, direction_index

        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        comm = SimComm(2)
        ex = HaloExchange(grid, topo, comm)
        fields = make_rank_fields(topo, grid, rng.random((16, 8, 8)))
        # smuggle a wrong-shaped payload onto the first envelope rank 0
        # will read; FIFO ordering guarantees it is matched first
        d0 = NEIGHBOR_DIRECTIONS[0]
        src = topo.neighbor(0, d0)
        tag = direction_index(tuple(-c for c in d0))
        comm.isend(src, 0, tag, np.zeros((1, 1, 1)))
        with pytest.raises(RuntimeError, match="ghost region shape mismatch") as exc:
            ex.exchange(0, [[f] for f in fields])
        assert "rank 0" in str(exc.value)
        assert f"direction {d0}" in str(exc.value)
        assert "level 0" in str(exc.value)

    def test_unmatched_receive_names_direction_and_level(self):
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 1, 1))
        ex = HaloExchange(grid, topo, SimComm(2))
        from repro.comm import UnmatchedReceiveError

        with pytest.raises(UnmatchedReceiveError) as exc:
            ex._receive(2, 0, src=1, tag=9, d=(1, 0, 0),
                        expected_shape=(1, 4, 4, 4, 4))
        assert "direction (1, 0, 0) at level 2" in str(exc.value)
        assert "deadlock" in str(exc.value)

    def test_exchange_with_rhs_field_data(self):
        """Exchange the actual model-problem RHS across 8 ranks."""
        grid = BrickGrid((2, 2, 2), 4)
        topo = CartTopology((2, 2, 2))
        dense = rhs_field((16, 16, 16), 1.0 / 16)
        fields = make_rank_fields(topo, grid, dense)
        comm = SimComm(8)
        HaloExchange(grid, topo, comm).exchange(0, [[f] for f in fields])
        check_ghosts_against_global(topo, grid, fields, dense)
