#!/usr/bin/env python
"""Solver variants: smoothers, bottom solvers, cycles, precision.

The paper uses damped Jacobi with a point-relaxation bottom solve and
V-cycles, and points to alternative smoothers (GS/SOR, Section IV-C),
other bottom solvers (Section IX) and mixed precision (related work
[28]) as natural variations.  This script runs them all on the same
32^3 model problem and compares convergence.

Run:  python examples/solver_variants.py
"""

import numpy as np

from repro.gmg import (
    GMGSolver,
    MixedPrecisionSolver,
    SolverConfig,
    discrete_solution,
)

BASE = dict(global_cells=32, num_levels=3, brick_dim=4,
            max_smooths=8, bottom_smooths=40)
EXACT = discrete_solution((32, 32, 32), 1 / 32)


def run(label: str, **overrides) -> None:
    solver = GMGSolver(SolverConfig(**BASE, **overrides))
    result = solver.solve()
    err = np.abs(solver.solution() - EXACT).max()
    print(f"  {label:<28s} cycles={result.num_vcycles:2d} "
          f"cf={result.convergence_factor:.3f} "
          f"residual={result.final_residual:.1e} error={err:.1e}")


def main() -> None:
    print("smoothers (8 smooths/visit):")
    run("jacobi (paper, omega=1/2)")
    run("red-black Gauss-Seidel", smoother="gsrb")
    run("SOR (omega=1.4)", smoother="sor")
    run("Chebyshev (degree 2)", smoother="chebyshev")

    print("\nbottom solvers:")
    run("point relaxation (paper)")
    run("conjugate gradients", bottom_solver="cg")
    run("FFT direct solve", bottom_solver="fft")

    print("\ncycle types:")
    run("V-cycle (paper)")
    run("W-cycle", cycle="W")
    run("F-cycle", cycle="F")

    print("\nprecision:")
    fp32 = GMGSolver(SolverConfig(**BASE, precision="fp32", max_vcycles=15))
    r32 = fp32.solve()
    print(f"  {'pure fp32':<28s} stalls at {r32.final_residual:.1e} "
          f"(cannot reach 1e-10)")
    mixed = MixedPrecisionSolver(SolverConfig(**BASE), inner_vcycles=2)
    rm = mixed.solve()
    err = np.abs(mixed.solution() - EXACT).max()
    print(f"  {'fp64 refinement + fp32 GMG':<28s} "
          f"outer={rm.outer_iterations} residual={rm.final_residual:.1e} "
          f"error={err:.1e}")


if __name__ == "__main__":
    main()
