#!/usr/bin/env python
"""The paper's 8-node machine comparison (Section VI).

Prices the 1024^3, 6-level, 12-V-cycle workload on the Perlmutter,
Frontier and Sunspot machine models and prints:

* Figure 3 — total time per multigrid level;
* Figure 4 — time per V-cycle vs the HPGMG-style baseline;
* Table II — finest-level operation breakdown;
* Figures 5/6 — kernel GStencil/s and exchange GB/s across levels,
  with the fitted latency/bandwidth model parameters;
* artifact-format per-rank timing rows ([min, avg, max] (sigma)).

Run:  python examples/machine_comparison.py
"""

import numpy as np

from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines import MACHINES
from repro.perf import TimingStat, format_level_timing


def artifact_style_rows(machine_name: str) -> None:
    """Emit per-op rows in the artifact's output format, with the
    cross-rank spread synthesised from the model time (the simulator is
    deterministic; ranks differ only via their neighbour placement)."""
    ts = TimedSolve(MACHINES[machine_name], WorkloadConfig())
    rng = np.random.default_rng(0)
    print(f"\n{machine_name} per-invocation timings (artifact format):")
    for lev in (0, 1):
        for op in ("applyOp", "smooth+residual"):
            t = ts.kernel_seconds(op, lev)
            samples = t * rng.normal(1.0, 0.0005, size=8)
            print("  " + format_level_timing(lev, op, TimingStat.from_samples(samples)))


def main() -> None:
    print(R.render_fig3(E.fig3_time_per_level()))
    print(R.render_fig4(E.fig4_vs_hpgmg()))
    print(R.render_table2(E.table2_op_breakdown()))
    print(R.render_fig5(E.fig5_kernel_throughput("applyOp")))
    print(R.render_fig5(E.fig5_kernel_throughput("smooth+residual")))
    print(R.render_fig6(E.fig6_exchange_bandwidth()))
    for name in MACHINES:
        artifact_style_rows(name)


if __name__ == "__main__":
    main()
