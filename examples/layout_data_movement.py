#!/usr/bin/env python
"""Why fine-grain data blocking works: a cache-simulation study.

The paper's Section III argues that an 8^3 tile of a conventional ijk
array "touches a large number of separate address streams, resulting in
more streams and cache misses [and] more data movement", while bricks
keep each block in one contiguous run.  This script *measures* that
claim with the repository's cache simulator: one 7-point stencil sweep
over a 16^3 domain, brick layout vs conventional layout, across a range
of cache sizes, reporting DRAM traffic relative to the compulsory
(infinite-cache) bound.

Run:  python examples/layout_data_movement.py
"""

from repro.memsim import (
    BrickLayout,
    CacheConfig,
    RowMajorLayout,
    measure_sweep,
)

N = 16
BRICK = 4


def main() -> None:
    print(f"7-point sweep over a {N}^3 domain, {BRICK}^3 tiles/bricks")
    print(f"{'cache':>8s}  {'brick traffic':>14s}  {'ijk traffic':>14s}  "
          f"{'brick/ijk':>9s}")
    for kib in (2, 4, 8, 16, 64):
        cache = CacheConfig(capacity_bytes=kib * 1024, line_bytes=64, ways=8)
        brick = measure_sweep(BrickLayout(N, BRICK), BRICK, cache)
        ijk = measure_sweep(RowMajorLayout(N), BRICK, cache)
        print(f"{kib:>6d}KB  {brick.traffic_ratio:>12.2f}x  "
              f"{ijk.traffic_ratio:>12.2f}x  "
              f"{brick.dram_bytes / ijk.dram_bytes:>8.2f}")
    print("\n(ratios are DRAM traffic over the write-allocate compulsory "
          "bound; 1.00x means every byte moved was unavoidable)")

    cache = CacheConfig(capacity_bytes=4 * 1024, line_bytes=64, ways=8)
    brick = measure_sweep(BrickLayout(N, BRICK), BRICK, cache)
    ijk = measure_sweep(RowMajorLayout(N), BRICK, cache)
    print(f"\nachieved-AI fraction at 4KB (Table V's quantity): "
          f"brick {brick.ai_fraction:.2f}, conventional {ijk.ai_fraction:.2f}")
    print(f"cache hit rates: brick {brick.hit_rate * 100:.1f}%, "
          f"conventional {ijk.hit_rate * 100:.1f}%")


def tlb_study() -> None:
    """Section III also credits bricks with exploiting TLBs: measure
    page walks for the same sweep through a small translation cache."""
    from repro.memsim import TLBConfig, measure_sweep_tlb, pages_per_tile

    print("\nTLB behaviour (8-entry TLB, 4KB pages):")
    tlb = TLBConfig(entries=8)
    for layout in (BrickLayout(32, BRICK), RowMajorLayout(32)):
        m = measure_sweep_tlb(layout, BRICK, tlb)
        print(f"  {m.layout_name:<16s} page walks {m.page_walks:>6d}  "
              f"walk rate {m.walk_rate * 100:.2f}%  "
              f"pages/tile {pages_per_tile(layout, BRICK):.1f}")


if __name__ == "__main__":
    main()
    tlb_study()
