#!/usr/bin/env python
"""Performance-portability report (paper Section VII).

Prints the reproduction of Tables III, IV and V and the Figure 7
potential-speedup analysis for the three GPU systems, using the public
experiment drivers.

Run:  python examples/portability_report.py
"""

from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.perf import ai_comparison_rows


def main() -> None:
    print(R.render_table4(ai_comparison_rows()))
    print(R.render_portability(
        E.table3_portability_roofline(),
        "Table III — Phi based on fraction of the Roofline",
    ))
    print(R.render_portability(
        E.table5_portability_ai(),
        "Table V — Phi based on fraction of theoretical AI",
    ))
    print(R.render_fig7(E.fig7_potential_speedup()))

    t3 = E.table3_portability_roofline()
    t5 = E.table5_portability_ai()
    print(f"headline numbers: Phi(roofline) = {t3.overall_phi * 100:.0f}% "
          f"(paper: 73%), Phi(theoretical AI) = {t5.overall_phi * 100:.0f}% "
          f"(paper: 92%)")


if __name__ == "__main__":
    main()
