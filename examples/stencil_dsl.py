#!/usr/bin/env python
"""Author a custom stencil in the DSL and inspect the generated kernel.

Reproduces the workflow of the paper's Figure 1 — write the stencil in
a Python-syntax DSL, let the vector code generator produce the
optimised kernel — for two stencils:

* the paper's 7-point applyOp (radius 1, constant coefficients);
* a 13-point fourth-order Laplacian (radius 2) showing that the same
  machinery handles wider stencils ("this format is fairly flexible,
  including larger stencils").

The generated source is printed so the vector-folding slices and the
hoisted common subexpressions are visible, then each kernel is executed
on bricked data and checked against a dense NumPy oracle.

Run:  python examples/stencil_dsl.py
"""

import numpy as np

from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import ConstRef, Grid, Stencil, analyze, compile_stencil, indices


def build_fourth_order_laplacian() -> Stencil:
    """13-point fourth-order accurate Laplacian: per axis
    (-1/12, 16/12, -30/12, 16/12, -1/12) / h^2."""
    i, j, k = indices()
    x, out = Grid("x"), Grid("lap")
    inv_h2 = ConstRef("inv_h2")
    axis_sum = (
        16.0 * (x(i + 1, j, k) + x(i - 1, j, k)
                + x(i, j + 1, k) + x(i, j - 1, k)
                + x(i, j, k + 1) + x(i, j, k - 1))
        - (x(i + 2, j, k) + x(i - 2, j, k)
           + x(i, j + 2, k) + x(i, j - 2, k)
           + x(i, j, k + 2) + x(i, j, k - 2))
        - 90.0 * x(i, j, k)
    )
    return Stencil("laplacian4", [out(i, j, k).assign(inv_h2 / 12.0 * axis_sum)])


def dense_laplacian4(x: np.ndarray, inv_h2: float) -> np.ndarray:
    out = -90.0 * x
    for axis in range(3):
        out += 16.0 * (np.roll(x, 1, axis) + np.roll(x, -1, axis))
        out -= np.roll(x, 2, axis) + np.roll(x, -2, axis)
    return inv_h2 / 12.0 * out


def main() -> None:
    stencil = build_fourth_order_laplacian()
    an = analyze(stencil)
    print(f"stencil {an.name!r}: radius {an.radius}, "
          f"{an.flops_per_point} flops/pt, {an.bytes_per_point} B/pt, "
          f"AI {an.arithmetic_intensity:.3f} FLOP/B")

    kernel = compile_stencil(stencil, brick_dim=4)
    print("\ngenerated kernel source:\n")
    print(kernel.source)

    grid = BrickGrid((8, 8, 8), 4)
    rng = np.random.default_rng(42)
    dense = rng.random(grid.shape_cells)
    x = BrickedArray.from_ijk(grid, dense)
    x.fill_ghost_periodic()
    lap = BrickedArray.zeros(grid)
    kernel.apply({"x": x, "lap": lap}, {"inv_h2": 1024.0})

    oracle = dense_laplacian4(dense, 1024.0)
    err = np.abs(lap.to_ijk() - oracle).max() / np.abs(oracle).max()
    print(f"relative error vs dense NumPy oracle: {err:.2e}")
    assert err < 1e-13

    # a glance at the paper's own Fig. 1 stencil, for comparison
    from repro.dsl import APPLY_OP

    print("\nthe paper's 7-point applyOp compiles to:\n")
    print(compile_stencil(APPLY_OP, brick_dim=4).source)


if __name__ == "__main__":
    main()
