#!/usr/bin/env python
"""AMR load-balancing preview (the paper's Section IX future work).

The paper closes by flagging adaptive mesh refinement as future work,
"where specific grid regions are subjected to refinement and load
balancing becomes critical".  This script quantifies that criticality
with the calibrated machine models: a centrally refined region is
assigned to ranks under a naive block policy and under Morton-order
interleaving, and each rank's smoothing work is priced with the
machine's kernel model.  Bulk-synchronous multigrid runs at the
slowest rank, so mean/max work is the parallel efficiency.

Run:  python examples/amr_load_balance.py
"""

from repro.harness.amr_preview import (
    RefinementStudy,
    load_balance,
    render_balance,
)
from repro.machines import MACHINES


def main() -> None:
    results = []
    for machine in MACHINES.values():
        for policy in ("block", "morton"):
            results.append(load_balance(machine, num_ranks=8, policy=policy))
    print(render_balance(results))

    print("sweep of refinement fraction (Perlmutter, 8 ranks):")
    from repro.machines import PERLMUTTER

    print(f"  {'refined':>8s}  {'block':>7s}  {'morton':>7s}")
    for frac in (0.02, 0.05, 0.1, 0.2, 0.4):
        study = RefinementStudy(refine_fraction=frac)
        block = load_balance(PERLMUTTER, study, 8, "block")
        morton = load_balance(PERLMUTTER, study, 8, "morton")
        print(f"  {frac * 100:>7.0f}%  {block.efficiency * 100:>6.1f}%  "
              f"{morton.efficiency * 100:>6.1f}%")
    print("\nload balancing is critical (naive placement loses 15-40%);")
    print("space-filling-curve interleaving recovers it — the scheduling")
    print("problem an AMR extension of the brick solver must solve.")


if __name__ == "__main__":
    main()
