#!/usr/bin/env python
"""Variable-coefficient diffusion through the same brick machinery.

The paper's model problem is constant-coefficient Poisson "for easy
performance comparison", but its DSL handles non-constant coefficients
and its HPGMG baseline is a variable-coefficient FV code.  This script
solves ``-div(beta grad u) = f`` with a smoothly varying ``beta`` —
same bricks, same communication-avoiding V-cycle, coefficients carried
as extra bricked fields and volume-averaged onto the coarse levels —
and verifies against a manufactured solution.

Run:  python examples/variable_coefficients.py
"""

import numpy as np

from repro.gmg.varcoef import VariableCoefficientSolver


def beta(x, y, z):
    """A smooth coefficient with a ~10:1 contrast (stays positive)."""
    return 1.0 + 0.55 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y) + (
        0.35 * np.cos(2 * np.pi * z)
    )


def main() -> None:
    n = 32
    solver = VariableCoefficientSolver(
        beta, global_cells=n, num_levels=3, brick_dim=4,
        max_smooths=8, bottom_smooths=60, rank_dims=(2, 1, 1),
    )
    print(f"variable-coefficient GMG on {n}^3, beta in "
          f"[{beta(0.75, 0.25, 0.5):.2f}, {beta(0.25, 0.0, 0.0):.2f}] "
          f"(smooth 4:1 contrast), 2 simulated ranks")

    # manufactured solution: compute b = A u, then recover u
    c = (np.arange(n) + 0.5) / n
    u = (
        np.sin(2 * np.pi * c)[:, None, None]
        * np.sin(4 * np.pi * c)[None, :, None]
        * np.cos(2 * np.pi * c)[None, None, :]
    )
    u -= u.mean()
    solver.set_rhs(solver.apply_operator(u))
    result = solver.solve(tol=1e-9, max_vcycles=60)

    print("\nresidual history:")
    for cyc, res in enumerate(result.residual_history):
        print(f"  cycle {cyc:2d}: {res:.3e}")
    sol = solver.solution()
    sol -= sol.mean()
    print(f"\nconverged: {result.converged} in {result.num_vcycles} V-cycles")
    print(f"max error vs manufactured solution: {np.abs(sol - u).max():.2e}")


if __name__ == "__main__":
    main()
