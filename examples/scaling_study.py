#!/usr/bin/env python
"""Weak and strong scaling study (paper Section VIII, Figs. 8-9).

Weak scaling holds 512^3 per rank and grows to 128 nodes (512 A100s /
512 GCDs) — parallel efficiency should stay above 87%.  Strong scaling
fixes the global domain (1024^3 / 2x1024^3 / 3x1024^3) and doubles
ranks — efficiency nose-dives as per-rank problems become latency
bound.  Also prints the per-V-cycle ablation of the Section V
optimisations.

Run:  python examples/scaling_study.py
"""

from repro.harness import experiments as E
from repro.harness import reporting as R


def main() -> None:
    print("WEAK SCALING (512^3 per rank)\n")
    for machine in ("Perlmutter", "Frontier", "Sunspot"):
        print(R.render_scaling(E.fig8_weak_scaling(machine)))

    print("STRONG SCALING (fixed global domain)\n")
    for machine in ("Perlmutter", "Frontier", "Sunspot"):
        print(R.render_scaling(E.fig9_strong_scaling(machine)))

    print("OPTIMISATION ABLATIONS (8-node workload)\n")
    for machine in ("Perlmutter", "Frontier", "Sunspot"):
        print(R.render_ablation(E.ablation_optimizations(machine)))

    weak = E.fig8_weak_scaling("Frontier")
    strong = E.fig9_strong_scaling("Frontier")
    print("headline: Frontier weak efficiency at "
          f"{weak.nodes[-1]} nodes = {weak.efficiency[-1] * 100:.0f}% "
          f"(paper: >= 87%); strong efficiency collapses to "
          f"{strong.efficiency[-1] * 100:.0f}%")


if __name__ == "__main__":
    main()
