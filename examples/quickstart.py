#!/usr/bin/env python
"""Quickstart: solve the paper's model problem with brick-based GMG.

Solves the 3-D Poisson equation with periodic boundaries on a 32^3
grid (the paper's Section IV-C setup at laptop scale): a three-level
V-cycle with point-Jacobi smoothing, fine-grain data blocking (4^3
bricks), and communication-avoiding ghost exchange.  The discrete
solution of this problem is known in closed form, so the script
verifies the answer, not just the residual.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.gmg import GMGSolver, SolverConfig, discrete_solution


def main() -> None:
    config = SolverConfig(
        global_cells=32,  # 32^3 cells on the unit cube
        num_levels=3,  # 32 -> 16 -> 8
        brick_dim=4,  # 4^3 bricks (the paper uses 8^3 at scale)
        max_smooths=12,  # paper: 12 smooths per level visit
        bottom_smooths=100,  # paper: 100-iteration point-Jacobi bottom solve
        tol=1e-10,  # paper's convergence criterion
    )
    solver = GMGSolver(config)
    print(f"Solving A x = b on {config.global_cells}^3 "
          f"({config.num_levels} levels, {config.brick_dim}^3 bricks)")

    result = solver.solve()

    print("\nresidual history (max-norm):")
    for cycle, res in enumerate(result.residual_history):
        label = "initial " if cycle == 0 else f"V-cycle {cycle}"
        print(f"  {label}: {res:.3e}")
    print(f"\nconverged: {result.converged} "
          f"in {result.num_vcycles} V-cycles "
          f"(convergence factor {result.convergence_factor:.3f})")

    exact = discrete_solution((32, 32, 32), 1 / 32)
    err = np.abs(solver.solution() - exact).max()
    print(f"max error vs closed-form discrete solution: {err:.3e}")

    counts = result.recorder.kernel_counts()
    print("\nkernel invocations at the finest level:")
    for (lev, op), n in sorted(counts.items()):
        if lev == 0:
            print(f"  {op:<26s} {n}")


if __name__ == "__main__":
    main()
