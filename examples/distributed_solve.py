#!/usr/bin/env python
"""Distributed GMG over simulated MPI: 8 ranks, 26-neighbour exchange.

Decomposes a 32^3 periodic domain over a 2x2x2 rank grid (the shape of
the paper's 8-node experiments), runs the same V-cycle on every rank in
lockstep with real ghost-brick exchange through the simulated MPI
layer, and then proves two things:

* the distributed answer is bit-identical to a single-rank solve
  (communication-avoiding redundant computation changes nothing);
* the exchange schedule matches the paper's communication-avoiding
  arithmetic: ceil(smooths / brick_dim) exchange phases per level
  visit instead of one per smoothing iteration.

Run:  python examples/distributed_solve.py
"""

import numpy as np

from repro.gmg import GMGSolver, SolverConfig


def main() -> None:
    base = dict(global_cells=32, num_levels=3, brick_dim=4,
                max_smooths=12, bottom_smooths=100)

    serial = GMGSolver(SolverConfig(**base))
    serial_result = serial.solve()
    print(f"serial solve:      {serial_result.num_vcycles} V-cycles, "
          f"final residual {serial_result.final_residual:.2e}")

    distributed = GMGSolver(SolverConfig(**base, rank_dims=(2, 2, 2)))
    dist_result = distributed.solve()
    print(f"distributed solve: {dist_result.num_vcycles} V-cycles, "
          f"final residual {dist_result.final_residual:.2e} "
          f"({distributed.topology.size} ranks)")

    diff = np.abs(serial.solution() - distributed.solution()).max()
    print(f"\nmax |serial - distributed| = {diff:.1e} "
          f"({'bit-identical' if diff == 0.0 else 'MISMATCH'})")

    rec = dist_result.recorder
    print("\ncommunication profile (all ranks, whole solve):")
    print(f"  total messages: {sum(rec.message_counts_by_level().values())}")
    for lev in sorted(rec.exchange_counts()):
        n_ex = rec.exchange_counts()[lev]
        mb = rec.message_bytes_by_level()[lev] / 1e6
        print(f"  level {lev}: {n_ex} exchange phases, {mb:8.2f} MB moved")

    # communication-avoiding arithmetic: 12 smooths with a 4-cell-deep
    # ghost zone need ceil(12/4) = 3 exchanges per visit
    expected = -(-base["max_smooths"] // 4)
    print(f"\nexchanges per level visit: "
          f"{distributed.vcycle.exchanges_per_visit(0)} "
          f"(= ceil(12 smooths / 4-cell ghost depth) = {expected}); "
          f"a conventional ghost-width-1 code would need "
          f"{base['max_smooths']}")

    if distributed.comm is not None:
        print(f"simulated MPI totals: {distributed.comm.sent_messages} sends, "
              f"{distributed.comm.sent_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
